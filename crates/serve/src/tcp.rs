//! The TCP front-end: the wire transport of the serving protocol.
//!
//! [`TcpServer`] accepts connections on a `std::net::TcpListener`, reads
//! length-prefixed [`ServeRequest`] frames, routes each through the shared
//! [`ModelRegistry`] (the same `handle` entry point the in-process service uses), and
//! writes the reply frame back.  One thread per connection, one scratch workspace per
//! connection (checked out of a shared [`ScratchPool`]); requests on one connection are
//! served in order, connections are independent.
//!
//! [`ServeClient`] is the matching blocking client.  Because the estimate crosses the
//! wire as raw `f64` bits, a TCP round trip is **bit-identical** to calling the
//! registry in process — pinned by the `wire_protocol` integration test and asserted on
//! every `registry_bench` run.
//!
//! Decode failures are answered with a framed [`ServeError::Protocol`] before the
//! connection closes; transport failures (peer gone) just end the connection thread.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nc_schema::Query;

use crate::pool::ScratchPool;
use crate::protocol::{
    decode_request, decode_result, encode_request, encode_result, read_frame, write_frame,
    ServeReply, ServeRequest,
};
use crate::registry::{ModelRegistry, ModelSelector};
use crate::ServeError;

/// How often the accept loop polls the stop flag while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A running TCP front-end over a model registry.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    shared: Arc<ServerShared>,
}

struct ServerShared {
    registry: Arc<ModelRegistry>,
    scratch_pool: ScratchPool,
    served: AtomicU64,
    next_conn_id: AtomicU64,
    /// Clones of every **live** connection stream (keyed by connection id), so
    /// shutdown can unblock their readers.  A connection removes its own entry on
    /// exit; finished handler threads are reaped at each accept — a long-lived server
    /// with short-lived clients must not accumulate dead fds or thread handles.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stop: AtomicBool,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts accepting.
    pub fn bind(registry: Arc<ModelRegistry>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServerShared {
            registry,
            scratch_pool: ScratchPool::new(0),
            served: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let accept_thread = {
            let stop = stop.clone();
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("nc-serve-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &shared))
                .expect("spawning the accept thread")
        };
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            shared,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry requests are routed through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Frames answered so far (replies and framed errors).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Connections currently open (closed connections remove themselves).
    pub fn live_connections(&self) -> usize {
        self.shared.conns.lock().expect("conns poisoned").len()
    }

    /// Stops accepting, unblocks and joins every connection thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Unblock readers stuck in read_exact: shut the sockets down.
        for (_, conn) in self.shared.conns.lock().expect("conns poisoned").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self
            .shared
            .conn_threads
            .lock()
            .expect("conn threads poisoned")
            .drain(..)
            .collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Joins handler threads that have already finished, so a long-lived server does not
/// accumulate one dead handle per past connection.
fn reap_finished_threads(shared: &ServerShared) {
    let mut threads = shared.conn_threads.lock().expect("conn threads poisoned");
    let mut i = 0;
    while i < threads.len() {
        if threads[i].is_finished() {
            let _ = threads.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, shared: &Arc<ServerShared>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                reap_finished_threads(shared);
                // Connection handlers do blocking framed reads; only the listener is
                // non-blocking.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Replies are one small frame each: without NODELAY, Nagle + delayed
                // ACKs add tens of milliseconds to every round trip.
                stream.set_nodelay(true).ok();
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .expect("conns poisoned")
                        .insert(conn_id, clone);
                }
                let shared_for_conn = shared.clone();
                match std::thread::Builder::new()
                    .name("nc-serve-conn".into())
                    .spawn(move || connection_loop(conn_id, stream, &shared_for_conn))
                {
                    Ok(handle) => shared
                        .conn_threads
                        .lock()
                        .expect("conn threads poisoned")
                        .push(handle),
                    Err(_) => {
                        shared
                            .conns
                            .lock()
                            .expect("conns poisoned")
                            .remove(&conn_id);
                        continue;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn connection_loop(conn_id: u64, mut stream: TcpStream, shared: &ServerShared) {
    let mut scratch = shared.scratch_pool.checkout();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            // EOF, peer reset, or shutdown() closing the socket: end the connection.
            Err(ServeError::Transport(_)) => break,
            Err(e) => {
                // Decodable-but-invalid framing (oversized length): tell the peer, then
                // close — the stream position is unrecoverable.
                shared.served.fetch_add(1, Ordering::SeqCst);
                let _ = write_frame(&mut stream, &encode_result(&Err(e)));
                break;
            }
        };
        let result = match decode_request(&frame) {
            Ok(request) => shared.registry.handle(&request, &mut scratch),
            Err(e) => Err(e),
        };
        let malformed = matches!(result, Err(ServeError::Protocol(_)));
        // Count before the reply leaves: a client that has its answer must already be
        // visible in `served()` (tests join clients and then read the counter).
        shared.served.fetch_add(1, Ordering::SeqCst);
        if write_frame(&mut stream, &encode_result(&result)).is_err() {
            break;
        }
        if malformed {
            // After a malformed request the frame boundary cannot be trusted.
            break;
        }
    }
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
    // Drop this connection's bookkeeping: the cloned fd must not outlive the
    // connection (a long-lived server would otherwise leak one fd per past client).
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .remove(&conn_id);
    shared.scratch_pool.checkin(scratch);
}

/// A blocking client for the TCP front-end (one connection, requests in order).
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a [`TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ServeClient { stream })
    }

    /// Sends one request and blocks for its reply.  The outer transport/protocol layer
    /// and the remote serving result collapse into one `Result`, so callers match on a
    /// single [`ServeError`].
    pub fn request(&mut self, request: &ServeRequest) -> Result<ServeReply, ServeError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let frame = read_frame(&mut self.stream)?;
        decode_result(&frame)?
    }

    /// Estimates `query` on the model `selector` resolves to (default sample budget).
    pub fn estimate(
        &mut self,
        selector: &ModelSelector,
        query: &Query,
    ) -> Result<ServeReply, ServeError> {
        self.request(&ServeRequest::new(selector.clone(), query.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BaselineModel;
    use nc_baselines::CardinalityEstimator;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    #[test]
    fn tcp_round_trip_serves_and_shuts_down() {
        let registry = Arc::new(ModelRegistry::new());
        let key = registry
            .register(3, "m", Arc::new(BaselineModel::new(Fixed(12.5))))
            .unwrap();
        let server = TcpServer::bind(registry.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut client = ServeClient::connect(addr).unwrap();
        let reply = client
            .estimate(&ModelSelector::latest(3, "m"), &Query::join(&["t"]))
            .unwrap();
        assert_eq!(reply.key, key);
        assert_eq!(reply.estimate, 12.5);

        // Remote routing errors arrive typed.
        assert!(matches!(
            client.estimate(&ModelSelector::latest(3, "nope"), &Query::join(&["t"])),
            Err(ServeError::UnknownModel(_))
        ));

        // A hot swap is visible to an already-connected client on its next request.
        registry
            .swap(3, "m", Arc::new(BaselineModel::new(Fixed(99.0))))
            .unwrap();
        let reply = client
            .estimate(&ModelSelector::latest(3, "m"), &Query::join(&["t"]))
            .unwrap();
        assert_eq!((reply.key.version, reply.estimate), (2, 99.0));

        // Two clients share the server.
        let mut other = ServeClient::connect(addr).unwrap();
        assert_eq!(
            other
                .estimate(&ModelSelector::latest_for_schema(3), &Query::join(&["t"]))
                .unwrap()
                .estimate,
            99.0
        );

        assert_eq!(server.served(), 4);
        // Shutdown returns even with clients still connected.
        server.shutdown();
        // The dead connection surfaces as a transport error client-side.
        assert!(matches!(
            client.estimate(&ModelSelector::latest(3, "m"), &Query::join(&["t"])),
            Err(ServeError::Transport(_) | ServeError::Protocol(_))
        ));
    }

    #[test]
    fn malformed_frames_get_a_typed_reply_then_a_close() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(1, "m", Arc::new(BaselineModel::new(Fixed(1.0))))
            .unwrap();
        let server = TcpServer::bind(registry, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A frame whose payload is garbage: the server answers with a Protocol error.
        write_frame(&mut stream, &[0x7F, 1, 2, 3]).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert!(matches!(
            decode_result(&frame).unwrap(),
            Err(ServeError::Protocol(_))
        ));
        // The framed error counts as an answered frame.
        assert_eq!(server.served(), 1);
        // ...and then closes the connection.
        assert!(read_frame(&mut stream).is_err());
        server.shutdown();
    }

    #[test]
    fn closed_connections_are_pruned() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(1, "m", Arc::new(BaselineModel::new(Fixed(1.0))))
            .unwrap();
        let server = TcpServer::bind(registry, "127.0.0.1:0").unwrap();
        // A burst of short-lived clients: each connects, queries, disconnects.
        for _ in 0..8 {
            let mut client = ServeClient::connect(server.local_addr()).unwrap();
            client
                .estimate(&ModelSelector::latest(1, "m"), &Query::join(&["t"]))
                .unwrap();
        }
        // Each handler removes its own bookkeeping when the client hangs up — the
        // server must not accumulate one leaked fd per past connection.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.live_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.live_connections(), 0);
        assert_eq!(server.served(), 8);
        server.shutdown();
    }
}
