//! The TCP front-end: the wire transport of the serving protocol.
//!
//! [`TcpServer`] is the public face of the [`crate::reactor`]: a nonblocking
//! epoll-multiplexed listener driving every connection from a fixed I/O + worker
//! thread set (no thread per connection).  Requests are length-prefixed
//! [`ServeRequest`] frames routed through the shared [`ModelRegistry`] — the same
//! `handle` entry point the in-process service uses — and replies come back strictly
//! in per-connection order, so clients may pipeline.
//!
//! [`ServeClient`] is the matching blocking client.  Because the estimate crosses the
//! wire as raw `f64` bits, a TCP round trip is **bit-identical** to calling the
//! registry in process — pinned by the `wire_protocol` and `reactor_frontend`
//! integration tests and asserted on every `registry_bench` run.
//!
//! Decode failures are answered with a framed [`ServeError::Protocol`] before the
//! connection closes; a full worker queue answers [`ServeError::Overloaded`] without
//! queueing; hostile or stalled peers are disconnected (see
//! [`ReactorConfig`] for the knobs).

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nc_schema::Query;

use crate::fault::{splitmix64_mix, FaultInjector, GOLDEN_GAMMA};
use crate::protocol::{
    decode_admin_result, decode_result, decode_stats_result, encode_deregister, encode_request,
    encode_stats_request, read_frame, write_frame, ServeReply, ServeRequest,
};
use crate::reactor::{Reactor, ReactorConfig, ReactorStats};
use crate::registry::{ModelKey, ModelRegistry, ModelSelector, ModelStats};
use crate::ServeError;

/// A running TCP front-end over a model registry.
pub struct TcpServer {
    reactor: Reactor,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts serving
    /// with default [`ReactorConfig`] tuning.
    pub fn bind(registry: Arc<ModelRegistry>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(registry, addr, ReactorConfig::default())
    }

    /// Binds with explicit reactor tuning.
    pub fn bind_with(
        registry: Arc<ModelRegistry>,
        addr: impl ToSocketAddrs,
        config: ReactorConfig,
    ) -> std::io::Result<Self> {
        Ok(TcpServer {
            reactor: Reactor::bind(registry, addr, config)?,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.reactor.local_addr()
    }

    /// The registry requests are routed through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        self.reactor.registry()
    }

    /// Frames answered so far (replies and framed errors).
    pub fn served(&self) -> u64 {
        self.reactor.served()
    }

    /// Connections currently open (closed connections remove themselves).
    pub fn live_connections(&self) -> usize {
        self.reactor.live_connections()
    }

    /// Reactor counters and gauges (accepted/overloaded/disconnect splits).
    pub fn stats(&self) -> ReactorStats {
        self.reactor.stats()
    }

    /// Stops accepting, closes every connection, joins the I/O and worker threads.
    pub fn shutdown(self) {
        self.reactor.shutdown();
    }
}

/// Client-side resilience tuning for [`ServeClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Overall per-request deadline.  Socket read/write timeouts are derived from
    /// what remains of it, so a dead or unresponsive server surfaces as a typed
    /// [`ServeError::Timeout`] instead of blocking forever.
    pub request_timeout: Duration,
    /// Retry budget per [`ServeClient::request`] call (estimates are idempotent —
    /// deterministic functions of `(seed, query)` — so replaying is always safe).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed of the backoff jitter stream (deterministic per client; give concurrent
    /// clients distinct seeds so their retries decorrelate reproducibly).
    pub retry_seed: u64,
    /// Client-side fault injection (`client.conn-drop`) and the injectable clock
    /// backoff sleeps through.
    pub faults: FaultInjector,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            request_timeout: Duration::from_secs(30),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            retry_seed: 0,
            faults: FaultInjector::disabled(),
        }
    }
}

/// A blocking client for the TCP front-end: one connection, in-order replies, with
/// optional pipelining via [`ServeClient::send_request`] / [`ServeClient::recv_result`].
///
/// [`ServeClient::request`] adds the resilience layer: per-request deadlines,
/// bounded exponential backoff with seeded jitter, and reconnect-and-replay for
/// the idempotent estimate path.  The raw pipelining halves stay single-shot.
pub struct ServeClient {
    stream: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
    /// Jitter-stream position (monotonic across the client's lifetime).
    backoffs: u64,
    retries: u64,
    reconnects: u64,
}

impl ServeClient {
    /// Connects to a [`TcpServer`] with default [`ClientConfig`] tuning.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience tuning.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let stream = Self::dial(addr, config.request_timeout)?;
        Ok(ServeClient {
            stream,
            addr,
            config,
            backoffs: 0,
            retries: 0,
            reconnects: 0,
        })
    }

    fn dial(addr: SocketAddr, timeout: Duration) -> std::io::Result<TcpStream> {
        let stream = if timeout.is_zero() {
            TcpStream::connect(addr)?
        } else {
            TcpStream::connect_timeout(&addr, timeout)?
        };
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    /// Total retried attempts across this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total reconnects across this client's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Arms both socket timeouts with what remains of `deadline`.
    fn set_deadline(&mut self, deadline: Instant) -> Result<(), ServeError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ServeError::Timeout);
        }
        let transport = |e: std::io::Error| ServeError::Transport(e.to_string());
        self.stream
            .set_read_timeout(Some(remaining))
            .map_err(transport)?;
        self.stream
            .set_write_timeout(Some(remaining))
            .map_err(transport)?;
        Ok(())
    }

    /// Deterministically jittered exponential backoff for retry `attempt` (1-based):
    /// `min(base · 2^(attempt-1), cap)` scaled into `[0.5, 1.0]` by the client's
    /// seeded jitter stream.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.backoff_cap);
        let draw =
            splitmix64_mix(self.config.retry_seed ^ self.backoffs.wrapping_add(GOLDEN_GAMMA));
        self.backoffs += 1;
        let jitter = 0.5 + 0.5 * (draw >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(jitter)
    }

    /// One wire round trip under `deadline` (no retries).
    fn attempt(
        &mut self,
        request: &ServeRequest,
        deadline: Instant,
    ) -> Result<ServeReply, ServeError> {
        self.set_deadline(deadline)?;
        if self.config.faults.fires("client.conn-drop") {
            // Simulate the peer vanishing mid-request: kill our half so the write
            // (or read) below fails through the real socket error path.
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
        }
        write_frame(&mut self.stream, &encode_request(request))?;
        let frame = read_frame(&mut self.stream)?;
        decode_result(&frame)?
    }

    /// Sends one request and blocks for its reply, retrying within the configured
    /// deadline and retry budget.  The outer transport/protocol layer and the
    /// remote serving result collapse into one `Result`, so callers match on a
    /// single [`ServeError`].
    ///
    /// Retry policy: [`ServeError::Transport`] reconnects and replays (estimates
    /// are idempotent); [`ServeError::Overloaded`] and [`ServeError::Internal`]
    /// back off and replay on the same connection (the server kept it healthy).
    /// [`ServeError::Timeout`] means the overall deadline lapsed — never retried —
    /// and routing/protocol errors are not transient, so they surface immediately.
    pub fn request(&mut self, request: &ServeRequest) -> Result<ServeReply, ServeError> {
        let deadline = Instant::now() + self.config.request_timeout;
        let mut attempt = 0u32;
        loop {
            let error = match self.attempt(request, deadline) {
                Ok(reply) => return Ok(reply),
                Err(e) => e,
            };
            attempt += 1;
            let reconnect = match &error {
                ServeError::Transport(_) => true,
                ServeError::Overloaded | ServeError::Internal(_) => false,
                _ => return Err(error),
            };
            if attempt > self.config.max_retries {
                return Err(error);
            }
            let delay = self.backoff_delay(attempt);
            if Instant::now() + delay >= deadline {
                return Err(error);
            }
            self.config.faults.sleep(delay);
            if reconnect {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match Self::dial(self.addr, remaining) {
                    Ok(stream) => {
                        self.stream = stream;
                        self.reconnects += 1;
                    }
                    Err(_) => return Err(error),
                }
            }
            self.retries += 1;
        }
    }

    /// Writes one request frame without waiting for its reply — the pipelining half.
    /// The server answers every request in send order, so `k` sends followed by `k`
    /// [`ServeClient::recv_result`] calls pair up exactly.  No retries: replaying
    /// half a pipeline would break the send/recv pairing.
    pub fn send_request(&mut self, request: &ServeRequest) -> Result<(), ServeError> {
        write_frame(&mut self.stream, &encode_request(request))
    }

    /// Blocks for the next in-order reply frame.
    pub fn recv_result(&mut self) -> Result<ServeReply, ServeError> {
        let frame = read_frame(&mut self.stream)?;
        decode_result(&frame)?
    }

    /// Estimates `query` on the model `selector` resolves to (default sample budget).
    pub fn estimate(
        &mut self,
        selector: &ModelSelector,
        query: &Query,
    ) -> Result<ServeReply, ServeError> {
        self.request(&ServeRequest::new(selector.clone(), query.clone()))
    }

    /// Admin: removes `(schema_fingerprint, name)` from the server's routing table,
    /// returning the deregistered version.  Single-shot — a mutation is not
    /// blind-replayed after a transport error (the first attempt may have applied;
    /// callers seeing [`ServeError::Transport`] or [`ServeError::Timeout`] should
    /// re-check with an estimate or a fresh deregister, which then reports
    /// [`ServeError::UnknownModel`]).
    pub fn deregister(
        &mut self,
        schema_fingerprint: u64,
        name: &str,
    ) -> Result<ModelKey, ServeError> {
        let deadline = Instant::now() + self.config.request_timeout;
        self.set_deadline(deadline)?;
        write_frame(
            &mut self.stream,
            &encode_deregister(schema_fingerprint, name),
        )?;
        let frame = read_frame(&mut self.stream)?;
        decode_admin_result(&frame)?
    }

    /// Admin: fetches the server's per-model latency/throughput split
    /// ([`crate::ModelRegistry::model_stats`]), sorted by key.  Read-only and
    /// single-shot — monitors poll; a failed poll is just retried on the next tick.
    pub fn stats(&mut self) -> Result<Vec<ModelStats>, ServeError> {
        let deadline = Instant::now() + self.config.request_timeout;
        self.set_deadline(deadline)?;
        write_frame(&mut self.stream, &encode_stats_request())?;
        let frame = read_frame(&mut self.stream)?;
        decode_stats_result(&frame)?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BaselineModel;
    use nc_baselines::CardinalityEstimator;
    use std::time::Duration;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    #[test]
    fn tcp_round_trip_serves_and_shuts_down() {
        let registry = Arc::new(ModelRegistry::new());
        let key = registry
            .register(3, "m", Arc::new(BaselineModel::new(Fixed(12.5))))
            .unwrap();
        let server = TcpServer::bind(registry.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut client = ServeClient::connect(addr).unwrap();
        let reply = client
            .estimate(&ModelSelector::latest(3, "m"), &Query::join(&["t"]))
            .unwrap();
        assert_eq!(reply.key, key);
        assert_eq!(reply.estimate, 12.5);

        // Remote routing errors arrive typed.
        assert!(matches!(
            client.estimate(&ModelSelector::latest(3, "nope"), &Query::join(&["t"])),
            Err(ServeError::UnknownModel(_))
        ));

        // A hot swap is visible to an already-connected client on its next request.
        registry
            .swap(3, "m", Arc::new(BaselineModel::new(Fixed(99.0))))
            .unwrap();
        let reply = client
            .estimate(&ModelSelector::latest(3, "m"), &Query::join(&["t"]))
            .unwrap();
        assert_eq!((reply.key.version, reply.estimate), (2, 99.0));

        // Two clients share the server.
        let mut other = ServeClient::connect(addr).unwrap();
        assert_eq!(
            other
                .estimate(&ModelSelector::latest_for_schema(3), &Query::join(&["t"]))
                .unwrap()
                .estimate,
            99.0
        );

        assert_eq!(server.served(), 4);
        // Shutdown returns even with clients still connected.
        server.shutdown();
        // The dead connection surfaces as a transport error client-side.
        assert!(matches!(
            client.estimate(&ModelSelector::latest(3, "m"), &Query::join(&["t"])),
            Err(ServeError::Transport(_) | ServeError::Protocol(_))
        ));
    }

    #[test]
    fn malformed_frames_get_a_typed_reply_then_a_close() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(1, "m", Arc::new(BaselineModel::new(Fixed(1.0))))
            .unwrap();
        let server = TcpServer::bind(registry, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A frame whose payload is garbage: the server answers with a Protocol error.
        write_frame(&mut stream, &[0x7F, 1, 2, 3]).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert!(matches!(
            decode_result(&frame).unwrap(),
            Err(ServeError::Protocol(_))
        ));
        // The framed error counts as an answered frame.
        assert_eq!(server.served(), 1);
        // ...and then closes the connection.
        assert!(read_frame(&mut stream).is_err());
        server.shutdown();
    }

    /// How many OS threads this process currently has (Linux: /proc).
    fn thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line")
    }

    #[test]
    fn connection_churn_leaks_neither_fds_nor_threads() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(1, "m", Arc::new(BaselineModel::new(Fixed(1.0))))
            .unwrap();
        let server = TcpServer::bind(registry, "127.0.0.1:0").unwrap();
        let baseline_threads = thread_count();
        // A burst of short-lived clients: each connects, queries, disconnects.  The
        // old front-end spawned (and could accumulate) one thread per connection;
        // the reactor's thread count must not move at all.
        for _ in 0..32 {
            let mut client = ServeClient::connect(server.local_addr()).unwrap();
            client
                .estimate(&ModelSelector::latest(1, "m"), &Query::join(&["t"]))
                .unwrap();
        }
        assert_eq!(thread_count(), baseline_threads);
        // Each close removes its bookkeeping — the server must not accumulate one
        // leaked fd per past connection.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.live_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.live_connections(), 0);
        assert_eq!(server.served(), 32);
        assert_eq!(server.stats().accepted, 32);
        server.shutdown();
    }

    #[test]
    fn client_pipelining_round_trips_in_order() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(1, "m", Arc::new(BaselineModel::new(Fixed(4.0))))
            .unwrap();
        let server = TcpServer::bind(registry, "127.0.0.1:0").unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let request = ServeRequest::new(ModelSelector::latest(1, "m"), Query::join(&["t"]));
        for _ in 0..8 {
            client.send_request(&request).unwrap();
        }
        for _ in 0..8 {
            assert_eq!(client.recv_result().unwrap().estimate, 4.0);
        }
        assert_eq!(server.served(), 8);
        server.shutdown();
    }
}
