//! A pool of reusable [`SamplerScratch`] workspaces shared by serving threads.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::lockcheck;
use neurocard::infer::SamplerScratch;

/// A pool of reusable [`SamplerScratch`] workspaces shared by the worker threads.
///
/// Pre-grown to the worker count, so steady-state checkouts never allocate; if more
/// checkouts than pooled scratches ever race (not possible with one checkout per worker,
/// but harmless), a fresh scratch is grown and joins the pool on check-in.
///
/// The free list is a [`lockcheck::Mutex`]: no poisoning (the pool is touched inside
/// `catch_unwind` on the request path, where a poisoned std mutex would turn one
/// estimator panic into a permanent pool outage) and debug-build lock-order tracking.
pub struct ScratchPool {
    free: lockcheck::Mutex<Vec<Box<SamplerScratch>>>,
    grown: AtomicU64,
}

impl ScratchPool {
    /// A pool pre-populated with `capacity` workspaces.
    pub fn new(capacity: usize) -> Self {
        ScratchPool {
            free: lockcheck::Mutex::new(
                "serve.scratch_pool",
                (0..capacity)
                    .map(|_| Box::new(SamplerScratch::new()))
                    .collect(),
            ),
            grown: AtomicU64::new(capacity as u64),
        }
    }

    /// Checks a workspace out (grows only if the pool is empty).
    pub fn checkout(&self) -> Box<SamplerScratch> {
        if let Some(s) = self.free.lock().pop() {
            return s;
        }
        self.grown.fetch_add(1, Ordering::Relaxed);
        Box::new(SamplerScratch::new())
    }

    /// Returns a workspace to the pool.
    pub fn checkin(&self, scratch: Box<SamplerScratch>) {
        self.free.lock().push(scratch);
    }

    /// Total workspaces ever created (capacity + emergency growths).
    pub fn total_created(&self) -> u64 {
        self.grown.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_pool_reuses_workspaces() {
        let pool = ScratchPool::new(2);
        let a = pool.checkout();
        let b = pool.checkout();
        // Pool empty: an emergency growth is counted.
        let c = pool.checkout();
        assert_eq!(pool.total_created(), 3);
        pool.checkin(a);
        pool.checkin(b);
        pool.checkin(c);
        // Subsequent checkouts reuse, never grow.
        for _ in 0..10 {
            let s = pool.checkout();
            pool.checkin(s);
        }
        assert_eq!(pool.total_created(), 3);
    }
}
