//! `neurocard-serve`: the TCP front-end binary.
//!
//! Loads one or more model artifacts, registers each in a [`ModelRegistry`] under its
//! schema fingerprint, and serves the wire protocol on a `std::net::TcpListener` until
//! killed.  Usage:
//!
//! ```text
//! neurocard-serve [--listen ADDR] [name=]artifact.ncar [[name=]artifact2.ncar ...]
//! ```
//!
//! * `--listen ADDR` — bind address (default `127.0.0.1:8466`; use port 0 for an
//!   ephemeral port, printed on startup).
//! * each positional argument is an artifact path, optionally prefixed `name=`; without
//!   a prefix the file stem is the model name.  Registering the same name twice (for
//!   the same schema) hot-swaps it to the next version.
//!
//! Clients speak the length-prefixed binary protocol of `nc_serve::protocol` — see
//! `ServeClient` for the in-tree client, or the README's framing table for the wire
//! layout.

use std::process::ExitCode;
use std::sync::Arc;

use nc_serve::{ModelRegistry, TcpServer};
use neurocard::ModelArtifact;

fn usage() -> ExitCode {
    eprintln!("usage: neurocard-serve [--listen ADDR] [name=]artifact.ncar [...]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:8466".to_string();
    let mut artifacts: Vec<(Option<String>, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => match args.get(i + 1) {
                Some(addr) => {
                    listen = addr.clone();
                    i += 2;
                }
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            arg => {
                let (name, path) = match arg.split_once('=') {
                    Some((name, path)) => (Some(name.to_string()), path.to_string()),
                    None => (None, arg.to_string()),
                };
                artifacts.push((name, path));
                i += 1;
            }
        }
    }
    if artifacts.is_empty() {
        return usage();
    }

    let registry = Arc::new(ModelRegistry::new());
    for (name, path) in &artifacts {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let artifact = match ModelArtifact::from_bytes(&bytes) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {path} is not a loadable model artifact: {e}");
                return ExitCode::FAILURE;
            }
        };
        let core = match artifact.to_core() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: could not build the estimator from {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let name = name.clone().unwrap_or_else(|| {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "model".to_string())
        });
        let key = registry.publish(artifact.schema_fingerprint(), &name, Arc::new(core));
        println!(
            "registered {key} from {path} ({} params, |J| = {})",
            artifact.manifest().num_params,
            artifact.manifest().full_join_rows
        );
    }

    let server = match TcpServer::bind(registry, listen.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("serving on {} (ctrl-c to stop)", server.local_addr());
    loop {
        std::thread::park();
    }
}
