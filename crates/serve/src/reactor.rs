//! The nonblocking multiplexed TCP front-end: an epoll reactor over the serving
//! protocol.
//!
//! This replaces the PR-5 thread-per-connection loop.  A fixed set of **I/O threads**
//! each run a level-triggered [`mio::Poll`] loop over a slab of connections: they
//! accept, read, parse length-prefixed frames, and write replies — never blocking on
//! any single peer.  Parsed requests are handed to a fixed **worker pool** through a
//! bounded queue; each worker routes through the shared [`ModelRegistry::handle`] entry
//! point (same as the in-process service) and posts the encoded reply back to the
//! owning I/O thread's mailbox, waking its poller via an eventfd [`mio::Waker`].
//!
//! Properties the tests pin:
//!
//! * **Pipelining, in order.** A client may write many request frames before reading;
//!   each request gets a per-connection sequence number at parse time, workers complete
//!   out of order, and replies are released strictly in sequence.
//! * **Admission control.** A full worker queue answers [`ServeError::Overloaded`]
//!   immediately (the request is never queued) instead of blocking the I/O thread — a
//!   burst sheds load; the connection stays healthy.
//! * **Bounded buffers, hostile clients disconnected.** Per-connection read/write
//!   buffers have hard limits; a slow-loris peer (partial frame, no progress) or a
//!   peer that stops reading its replies is disconnected after
//!   [`ReactorConfig::stall_timeout`], not pinned forever.
//! * **Panic isolation.** A panicking estimator is caught in the worker
//!   ([`ServeError::Internal`] reply); the worker, the connection and the server
//!   survive, and the scratch that was live during the panic is discarded.
//! * **Determinism.** Estimates are derived purely from `(config.seed, query)`, so
//!   replies are bit-identical to direct [`neurocard::EstimatorCore`] calls regardless
//!   of I/O thread count, worker count, queueing order or concurrent swaps.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::lockcheck::Mutex;
use mio::{Events, Interest, Poll, Token, Waker};

use crate::fault::FaultInjector;
use crate::journal::{JournalEvent, SharedJournal};
use crate::pool::ScratchPool;
use crate::protocol::{
    decode_deregister, decode_request, decode_stats_request, encode_admin_result, encode_result,
    encode_stats_result, MAX_FRAME_LEN, MSG_DEREGISTER, MSG_STATS,
};
use crate::registry::{ModelKey, ModelRegistry, ModelSelector};
use crate::service::panic_message;
use crate::ServeError;

/// Tuning of a [`Reactor`] (and therefore of [`crate::TcpServer`]).
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Poller threads multiplexing connections (≥ 1; connections are distributed
    /// round-robin).
    pub io_threads: usize,
    /// Worker threads executing estimates (≥ 1).
    pub workers: usize,
    /// Bound of the worker queue; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum simultaneous connections; excess accepts get a best-effort
    /// `Overloaded` frame and an immediate close.
    pub max_connections: usize,
    /// Hard cap on buffered unparsed request bytes per connection; a frame declaring
    /// more gets a framed protocol error and a close.
    pub read_buffer_limit: usize,
    /// Hard cap on buffered unsent reply bytes per connection; exceeding it (a client
    /// that stopped reading) disconnects.
    pub write_buffer_limit: usize,
    /// Requests admitted per connection before its reads pause (pipelining window).
    pub max_inflight_per_conn: usize,
    /// A connection holding a partial frame, or unsent replies, without progress for
    /// this long is disconnected.
    pub stall_timeout: Duration,
    /// Sample budget applied when a request carries none; `None` defers to the
    /// selected model's own default.
    pub default_samples: Option<usize>,
    /// Fault injection hooks (see [`crate::fault`]); inert by default, and compiled
    /// away entirely in release builds.
    pub faults: FaultInjector,
    /// Write-ahead journal for admin mutations (deregister); when `None`, admin
    /// requests still apply but are not persisted across restarts.
    pub admin_journal: Option<SharedJournal>,
    /// Precision autoselection: when the worker-queue depth at dispatch time is at
    /// or past this threshold, [`Precision::Exact`] requests are served at
    /// [`Precision::Fast`] instead — precision degrades before availability does.
    /// `None` (the default) disables; explicit `Fast` requests are unaffected, and
    /// without the `simd` feature the fast tier is bit-identical to exact anyway.
    ///
    /// [`Precision::Exact`]: neurocard::Precision::Exact
    /// [`Precision::Fast`]: neurocard::Precision::Fast
    pub fast_precision_queue_depth: Option<usize>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            io_threads: 2,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_depth: 256,
            max_connections: 1024,
            read_buffer_limit: 1 << 20,
            write_buffer_limit: 1 << 20,
            max_inflight_per_conn: 32,
            stall_timeout: Duration::from_secs(10),
            default_samples: None,
            faults: FaultInjector::disabled(),
            admin_journal: None,
            fast_precision_queue_depth: None,
        }
    }
}

/// Counters and gauges of a running [`Reactor`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReactorStats {
    /// Connections accepted (including ones later disconnected).
    pub accepted: u64,
    /// Frames answered (replies and framed errors).
    pub served: u64,
    /// Requests shed by admission control (each still answered with a framed
    /// [`ServeError::Overloaded`]).
    pub overloaded: u64,
    /// Connections dropped for stalling (slow-loris partial frames, unread replies).
    pub stalled_disconnects: u64,
    /// Connections dropped for exceeding a buffer limit or the connection cap.
    pub overflow_disconnects: u64,
    /// Accepts refused *at the listener* because `live_connections` had reached
    /// `max_connections` (a subset of `overflow_disconnects`).  Together with
    /// `live_connections` / `max_connections` this is the accept-backlog gauge: a
    /// nonzero value means the cap — not the workers — is shedding load.
    pub accept_sheds: u64,
    /// Connections currently open.
    pub live_connections: usize,
    /// The configured connection cap, exported so `live_connections` reads as a
    /// utilisation gauge without consulting the config.
    pub max_connections: usize,
    /// Requests admitted to the worker queue and not yet picked up.
    pub queue_depth: usize,
    /// Exact-precision requests downgraded to the fast tier because the queue
    /// depth had crossed [`ReactorConfig::fast_precision_queue_depth`].
    pub fast_autoselected: u64,
}

const TOKEN_WAKER: Token = Token(0);
const TOKEN_LISTENER: Token = Token(1);
const TOKEN_BASE: usize = 2;

/// One estimate crossing from an I/O thread to a worker.
struct Job {
    io_idx: usize,
    conn_id: u64,
    seq: u64,
    frame: Vec<u8>,
}

/// One encoded reply crossing back from a worker to an I/O thread.
struct Completion {
    conn_id: u64,
    seq: u64,
    frame: Vec<u8>,
    /// Close the connection after this reply flushes (protocol errors: the frame
    /// boundary downstream of a malformed request cannot be trusted).
    close_after: bool,
}

/// Cross-thread inbox of one I/O thread.
#[derive(Default)]
struct Mailbox {
    new_conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

struct IoShared {
    mailbox: Mutex<Mailbox>,
    waker: Waker,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    config: ReactorConfig,
    stop: AtomicBool,
    served: AtomicU64,
    accepted: AtomicU64,
    overloaded: AtomicU64,
    stalled_disconnects: AtomicU64,
    overflow_disconnects: AtomicU64,
    accept_sheds: AtomicU64,
    live: AtomicUsize,
    queue_depth: AtomicUsize,
    fast_autoselected: AtomicU64,
    next_conn_id: AtomicU64,
    round_robin: AtomicUsize,
    io: Vec<IoShared>,
}

impl Shared {
    fn deliver(&self, io_idx: usize, completion: Completion) {
        self.io[io_idx].mailbox.lock().completions.push(completion);
        let _ = self.io[io_idx].waker.wake();
    }
}

/// The running reactor: I/O threads + worker pool over one listener.
pub struct Reactor {
    addr: SocketAddr,
    shared: Arc<Shared>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Reactor {
    /// Binds `addr` and starts the I/O and worker threads.
    pub fn bind(
        registry: Arc<ModelRegistry>,
        addr: impl ToSocketAddrs,
        config: ReactorConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let io_count = config.io_threads.max(1);
        let worker_count = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);

        // One Poll per I/O thread, created here so the wakers can register before the
        // threads exist; the listener lives on thread 0.
        let mut polls = Vec::with_capacity(io_count);
        let mut io_shared = Vec::with_capacity(io_count);
        for _ in 0..io_count {
            let poll = Poll::new()?;
            let waker = Waker::new(&poll, TOKEN_WAKER)?;
            polls.push(poll);
            io_shared.push(IoShared {
                mailbox: Mutex::new("reactor.mailbox", Mailbox::default()),
                waker,
            });
        }
        polls[0].register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;

        let shared = Arc::new(Shared {
            registry,
            config: ReactorConfig {
                io_threads: io_count,
                workers: worker_count,
                queue_depth,
                ..config
            },
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            stalled_disconnects: AtomicU64::new(0),
            overflow_disconnects: AtomicU64::new(0),
            accept_sheds: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            fast_autoselected: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(0),
            round_robin: AtomicUsize::new(0),
            io: io_shared,
        });

        let (jobs_tx, jobs_rx) = sync_channel::<Job>(queue_depth);
        let jobs_rx = Arc::new(Mutex::new("reactor.worker_rx", jobs_rx));
        let scratch_pool = Arc::new(ScratchPool::new(worker_count));

        let workers = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                let rx = jobs_rx.clone();
                let pool = scratch_pool.clone();
                std::thread::Builder::new()
                    .name(format!("nc-reactor-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, &pool))
                    // nc-lint: allow(panic-in-serving) — bind-time path, before the
                    // listener accepts anything; thread-spawn failure means the
                    // process cannot serve at all.
                    .expect("spawning a reactor worker")
            })
            .collect();

        // The listener must move (not be dup'ed) into thread 0: epoll watches its fd,
        // and dropping the original here would silently deregister the accept source.
        let mut listener = Some(listener);
        let io_threads = polls
            .into_iter()
            .enumerate()
            .map(|(i, poll)| {
                let shared = shared.clone();
                let jobs_tx = jobs_tx.clone();
                let listener = if i == 0 { listener.take() } else { None };
                std::thread::Builder::new()
                    .name(format!("nc-reactor-io-{i}"))
                    .spawn(move || IoThread::new(i, poll, listener, shared, jobs_tx).run())
                    // nc-lint: allow(panic-in-serving) — same bind-time reasoning as
                    // the worker spawns above: no connection exists yet to answer.
                    .expect("spawning a reactor I/O thread")
            })
            .collect();
        // `jobs_tx` clones now live only in the I/O threads: when they exit, the
        // channel disconnects and the workers drain out.
        drop(jobs_tx);

        Ok(Reactor {
            addr,
            shared,
            io_threads,
            workers,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry requests are routed through.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Frames answered so far (replies and framed errors).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Connections currently open.
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Counters and gauges.
    pub fn stats(&self) -> ReactorStats {
        ReactorStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            served: self.shared.served.load(Ordering::SeqCst),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
            stalled_disconnects: self.shared.stalled_disconnects.load(Ordering::Relaxed),
            overflow_disconnects: self.shared.overflow_disconnects.load(Ordering::Relaxed),
            accept_sheds: self.shared.accept_sheds.load(Ordering::Relaxed),
            live_connections: self.shared.live.load(Ordering::SeqCst),
            max_connections: self.shared.config.max_connections,
            queue_depth: self.shared.queue_depth.load(Ordering::Relaxed),
            fast_autoselected: self.shared.fast_autoselected.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes every connection, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for io in &self.shared.io {
            let _ = io.waker.wake();
        }
        for t in self.io_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>, pool: &ScratchPool) {
    loop {
        // Hold the receiver lock only for the dequeue, never the compute.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // all I/O threads gone
        };
        // fetch_sub returns the pre-decrement depth: the backlog including this job,
        // which is the congestion signal precision autoselection keys off.
        let depth_at_dispatch = shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if job.frame.first() == Some(&MSG_DEREGISTER) {
            let result = handle_deregister(shared, &job.frame);
            let close_after = matches!(result, Err(ServeError::Protocol(_)));
            shared.deliver(
                job.io_idx,
                Completion {
                    conn_id: job.conn_id,
                    seq: job.seq,
                    frame: encode_admin_result(&result),
                    close_after,
                },
            );
            continue;
        }
        if job.frame.first() == Some(&MSG_STATS) {
            let result = decode_stats_request(&job.frame).map(|()| shared.registry.model_stats());
            let close_after = matches!(result, Err(ServeError::Protocol(_)));
            shared.deliver(
                job.io_idx,
                Completion {
                    conn_id: job.conn_id,
                    seq: job.seq,
                    frame: encode_stats_result(&result),
                    close_after,
                },
            );
            continue;
        }
        let result = match decode_request(&job.frame) {
            Ok(mut request) => {
                if request.samples.is_none() {
                    request.samples = shared.config.default_samples;
                }
                // Precision autoselection: under backlog, trade the exact tier for
                // the fast one instead of (eventually) shedding with Overloaded.
                if let Some(threshold) = shared.config.fast_precision_queue_depth {
                    if request.precision == neurocard::Precision::Exact
                        && depth_at_dispatch >= threshold
                    {
                        request.precision = neurocard::Precision::Fast;
                        shared.fast_autoselected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Catch estimator panics: reply Internal, keep the worker, discard the
                // scratch that was live during the unwind (its state is suspect; the
                // pool replaces it on demand).  Injected worker faults land inside the
                // same boundary, so chaos exercises exactly the production panic path.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.config.faults.maybe_panic("worker.panic");
                    shared.config.faults.stall("worker.delay");
                    let mut scratch = pool.checkout();
                    let result = shared.registry.handle(&request, &mut scratch);
                    pool.checkin(scratch);
                    result
                }))
                .unwrap_or_else(|panic| Err(ServeError::Internal(panic_message(panic))))
            }
            Err(e) => Err(e),
        };
        let close_after = matches!(result, Err(ServeError::Protocol(_)));
        shared.deliver(
            job.io_idx,
            Completion {
                conn_id: job.conn_id,
                seq: job.seq,
                frame: encode_result(&result),
                close_after,
            },
        );
    }
}

/// Applies one wire `deregister`: write-ahead to the admin journal, then drop the
/// routing entry.  The journal append happens *before* the registry mutation — a
/// crash between the two replays the deregister on restart, whereas the opposite
/// order would resurrect the model.
fn handle_deregister(shared: &Shared, frame: &[u8]) -> Result<ModelKey, ServeError> {
    let (schema_fingerprint, name) = decode_deregister(frame)?;
    // Check existence first so an unknown model is a typed error, not a journal
    // entry: journaling a no-op deregister would be harmless but noisy.
    if shared.registry.latest(schema_fingerprint, &name).is_none() {
        return Err(ServeError::UnknownModel(
            ModelSelector::latest(schema_fingerprint, &name).to_string(),
        ));
    }
    if let Some(journal) = &shared.config.admin_journal {
        journal
            .append(&JournalEvent::deregister(schema_fingerprint, &name))
            .map_err(|e| ServeError::Internal(format!("admin journal append failed: {e}")))?;
    }
    shared.registry.deregister(schema_fingerprint, &name)
}

/// Why a connection was torn down (feeds the right stats counter).
#[derive(PartialEq)]
enum CloseCause {
    /// Normal end of life: peer hung up, protocol-error drain finished, shutdown.
    Orderly,
    Stalled,
    Overflow,
}

struct Conn {
    id: u64,
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence number to release into `write_buf` (in-order reply discipline).
    next_reply: u64,
    /// Completed-but-out-of-order replies, keyed by sequence number.
    pending: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests admitted (parsed) and not yet released in order.
    inflight: usize,
    /// The peer half-closed (or a fatal frame ended reads): parse nothing more, flush
    /// what remains, then close.
    read_closed: bool,
    /// Close as soon as `write_buf` drains, discarding everything else.
    draining_close: bool,
    /// When the tail of `read_buf` became a partial frame (slow-loris clock).
    partial_since: Option<Instant>,
    /// When `write_buf` last failed to fully drain (unread-replies clock).
    write_stalled_since: Option<Instant>,
    interest: Interest,
}

impl Conn {
    fn wants(&self, max_inflight: usize) -> Interest {
        let mut interest = Interest::NONE;
        if !self.read_closed && !self.draining_close && self.inflight < max_inflight {
            interest = interest | Interest::READABLE;
        }
        if !self.write_buf.is_empty() {
            interest = interest | Interest::WRITABLE;
        }
        interest
    }
}

struct IoThread {
    idx: usize,
    poll: Poll,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    jobs: SyncSender<Job>,
    conns: Vec<Option<Conn>>,
    free_slots: Vec<usize>,
    by_id: HashMap<u64, usize>,
}

impl IoThread {
    fn new(
        idx: usize,
        poll: Poll,
        listener: Option<TcpListener>,
        shared: Arc<Shared>,
        jobs: SyncSender<Job>,
    ) -> Self {
        IoThread {
            idx,
            poll,
            listener,
            shared,
            jobs,
            conns: Vec::new(),
            free_slots: Vec::new(),
            by_id: HashMap::new(),
        }
    }

    fn run(mut self) {
        // The tick bounds stall detection *and* stop-flag latency.
        let tick = (self.shared.config.stall_timeout / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(500));
        let mut events = Events::with_capacity(256);
        while !self.shared.stop.load(Ordering::SeqCst) {
            if self.poll.poll(&mut events, Some(tick)).is_err() {
                continue;
            }
            let mut accept_ready = false;
            for event in events.iter() {
                match event.token() {
                    TOKEN_WAKER => self.shared.io[self.idx].waker.drain(),
                    TOKEN_LISTENER => accept_ready = true,
                    Token(t) => self.on_conn_event(t - TOKEN_BASE, event.is_writable()),
                }
            }
            self.drain_mailbox();
            // Accept LAST: a slot freed while processing this batch may be reused by a
            // new connection, and stale tokens from the same batch must not reach it.
            if accept_ready {
                self.accept_all();
            }
            self.sweep_stalls();
        }
        // Shutdown: close everything still open.
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close(slot, CloseCause::Orderly);
            }
        }
    }

    // ---- connection lifecycle -------------------------------------------------

    fn accept_all(&mut self) {
        // Only I/O thread 0 owns the listener; a spurious TOKEN_LISTENER on another
        // thread (impossible today — nothing else registers that token) is a no-op.
        let Some(listener) = self.listener.take() else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_nonblocking(true);
                    // Replies are one small frame each: without NODELAY, Nagle +
                    // delayed ACKs add tens of milliseconds per round trip.
                    let _ = stream.set_nodelay(true);
                    if self.shared.live.load(Ordering::SeqCst) >= self.shared.config.max_connections
                    {
                        // Best-effort refusal frame, then drop.
                        let mut s = &stream;
                        let _ = s.write(&refusal_frame());
                        self.shared
                            .overflow_disconnects
                            .fetch_add(1, Ordering::Relaxed);
                        self.shared.accept_sheds.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.shared.live.fetch_add(1, Ordering::SeqCst);
                    let target = self.shared.round_robin.fetch_add(1, Ordering::Relaxed)
                        % self.shared.config.io_threads;
                    if target == self.idx {
                        self.install(stream);
                    } else {
                        self.shared.io[target].mailbox.lock().new_conns.push(stream);
                        let _ = self.shared.io[target].waker.wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        self.listener = Some(listener);
    }

    fn install(&mut self, stream: TcpStream) {
        let id = self.shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let conn = Conn {
            id,
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            next_seq: 0,
            next_reply: 0,
            pending: BTreeMap::new(),
            inflight: 0,
            read_closed: false,
            draining_close: false,
            partial_since: None,
            write_stalled_since: None,
            interest: Interest::READABLE,
        };
        if self
            .poll
            .register(
                conn.stream.as_raw_fd(),
                Token(slot + TOKEN_BASE),
                conn.interest,
            )
            .is_err()
        {
            self.free_slots.push(slot);
            self.shared.live.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.by_id.insert(id, slot);
        self.conns[slot] = Some(conn);
    }

    fn close(&mut self, slot: usize, cause: CloseCause) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poll.deregister(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        self.by_id.remove(&conn.id);
        self.free_slots.push(slot);
        self.shared.live.fetch_sub(1, Ordering::SeqCst);
        match cause {
            CloseCause::Orderly => {}
            CloseCause::Stalled => {
                self.shared
                    .stalled_disconnects
                    .fetch_add(1, Ordering::Relaxed);
            }
            CloseCause::Overflow => {
                self.shared
                    .overflow_disconnects
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // ---- event handling -------------------------------------------------------

    fn on_conn_event(&mut self, slot: usize, writable: bool) {
        if self.conns.get(slot).map_or(true, Option::is_none) {
            return; // already closed earlier in this batch
        }
        if writable && !self.flush(slot) {
            return;
        }
        if !self.fill(slot) {
            return;
        }
        self.pump(slot);
    }

    /// Reads everything available into `read_buf`.  Returns false if the connection
    /// was closed.
    fn fill(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            debug_assert!(false, "fill() on an empty slot");
            return false;
        };
        if conn.read_closed || conn.draining_close {
            // Still must notice a full hangup so a drain-phase peer that vanished
            // (e.g. reset) does not linger until the stall sweep.
            let mut probe = [0u8; 64];
            loop {
                match (&conn.stream).read(&mut probe) {
                    Ok(0) => {
                        if conn.inflight == 0 && conn.write_buf.is_empty() {
                            self.close(slot, CloseCause::Orderly);
                            return false;
                        }
                        return true;
                    }
                    Ok(_) => continue, // discard post-close bytes
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(slot, CloseCause::Orderly);
                        return false;
                    }
                }
            }
        }
        let mut tmp = [0u8; 16 * 1024];
        // Injected partial read: shrink this readiness cycle to a few bytes and stop
        // early, exactly as if the kernel had delivered that little.  Level-triggered
        // polling re-reports readiness, so no byte is lost — only re-sliced.
        let cap = match self.shared.config.faults.draw("reactor.partial-read") {
            Some(draw) => 1 + (draw % 7) as usize,
            None => tmp.len(),
        };
        loop {
            match (&conn.stream).read(&mut tmp[..cap]) {
                Ok(0) => {
                    conn.read_closed = true;
                    return true;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&tmp[..n]);
                    // The parser below dispatches complete frames and rejects frames
                    // declaring more than the limit, so an over-limit backlog means a
                    // peer streaming garbage faster than it can be shed.
                    if conn.read_buf.len() > self.shared.config.read_buffer_limit + tmp.len() {
                        self.close(slot, CloseCause::Overflow);
                        return false;
                    }
                    if cap < tmp.len() {
                        return true; // injected partial read: simulated WouldBlock
                    }
                    if n < tmp.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, CloseCause::Orderly);
                    return false;
                }
            }
        }
    }

    /// Parses frames, admits jobs, releases ordered replies, updates interest — the
    /// per-connection state machine turn.  Safe to call whenever anything changed.
    fn pump(&mut self, slot: usize) {
        let max_inflight = self.shared.config.max_inflight_per_conn.max(1);
        loop {
            let conn = match self.conns.get_mut(slot).and_then(Option::as_mut) {
                Some(c) => c,
                None => return,
            };
            if conn.read_closed || conn.draining_close || conn.inflight >= max_inflight {
                break;
            }
            if conn.read_buf.len() < 4 {
                break;
            }
            let mut len_bytes = [0u8; 4];
            len_bytes.copy_from_slice(&conn.read_buf[..4]);
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len > MAX_FRAME_LEN || len + 4 > self.shared.config.read_buffer_limit {
                // Tell the peer, then close once the error flushes: the declared
                // length cannot be skipped over, the boundary is lost.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.inflight += 1;
                conn.read_buf.clear();
                conn.read_closed = true;
                let frame = encode_result(&Err::<crate::ServeReply, _>(ServeError::Protocol(
                    format!("frame length {len} exceeds the limit"),
                )));
                self.complete(slot, seq, frame, true);
                continue;
            }
            if conn.read_buf.len() < 4 + len {
                break; // partial frame: wait for more bytes
            }
            let frame = conn.read_buf[4..4 + len].to_vec();
            conn.read_buf.drain(..4 + len);
            conn.partial_since = None;
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.inflight += 1;
            let (io_idx, conn_id) = (self.idx, conn.id);
            match self.jobs.try_send(Job {
                io_idx,
                conn_id,
                seq,
                frame,
            }) {
                Ok(()) => {
                    self.shared.queue_depth.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(_)) => {
                    // Admission control: answer Overloaded right now, in order, without
                    // ever queueing the request.
                    self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                    let frame = encode_result(&Err::<crate::ServeReply, _>(ServeError::Overloaded));
                    self.complete(slot, seq, frame, false);
                }
                Err(TrySendError::Disconnected(_)) => {
                    let frame =
                        encode_result(&Err::<crate::ServeReply, _>(ServeError::ShuttingDown));
                    self.complete(slot, seq, frame, true);
                }
            }
        }
        // Partial-frame clock for the stall sweep.
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            if conn.read_buf.is_empty() || conn.read_closed || conn.inflight >= max_inflight {
                if conn.read_buf.is_empty() {
                    conn.partial_since = None;
                }
            } else if conn.partial_since.is_none() {
                conn.partial_since = Some(Instant::now());
            }
        }
        self.finish_turn(slot);
    }

    /// Post-pump bookkeeping: orderly close when drained, interest reregistration.
    fn finish_turn(&mut self, slot: usize) {
        let max_inflight = self.shared.config.max_inflight_per_conn.max(1);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let drained = conn.write_buf.is_empty();
        if conn.draining_close && drained {
            self.close(slot, CloseCause::Orderly);
            return;
        }
        if conn.read_closed && drained && conn.inflight == 0 && conn.pending.is_empty() {
            self.close(slot, CloseCause::Orderly);
            return;
        }
        let wants = conn.wants(max_inflight);
        if wants != conn.interest {
            conn.interest = wants;
            let _ = self
                .poll
                .reregister(conn.stream.as_raw_fd(), Token(slot + TOKEN_BASE), wants);
        }
    }

    /// Registers one completed reply and releases everything now deliverable in order.
    fn complete(&mut self, slot: usize, seq: u64, frame: Vec<u8>, close_after: bool) {
        let conn = match self.conns.get_mut(slot).and_then(Option::as_mut) {
            Some(c) => c,
            None => return,
        };
        conn.pending.insert(seq, (frame, close_after));
        while let Some((frame, close_after)) = conn.pending.remove(&conn.next_reply) {
            conn.next_reply += 1;
            conn.inflight -= 1;
            conn.write_buf
                .extend_from_slice(&(frame.len() as u32).to_le_bytes());
            conn.write_buf.extend_from_slice(&frame);
            // Count before the reply leaves: a client holding its answer must already
            // be visible in `served()`.
            self.shared.served.fetch_add(1, Ordering::SeqCst);
            if close_after {
                conn.read_closed = true;
                conn.draining_close = true;
                conn.read_buf.clear();
                conn.pending.clear();
                conn.inflight = 0;
                break;
            }
        }
        if conn.write_buf.len() > self.shared.config.write_buffer_limit {
            // The peer stopped reading its replies; do not let it pin memory.
            self.close(slot, CloseCause::Overflow);
            return;
        }
        if !self.flush(slot) {
            return;
        }
        self.finish_turn(slot);
    }

    /// Writes as much of `write_buf` as the socket accepts.  Returns false if the
    /// connection was closed.
    fn flush(&mut self, slot: usize) -> bool {
        let conn = match self.conns.get_mut(slot).and_then(Option::as_mut) {
            Some(c) => c,
            None => return false,
        };
        // Injected partial write: cap how much this cycle pushes, then report
        // WouldBlock.  The unsent tail stays in `write_buf`; the poller retries.
        let cap = match self.shared.config.faults.draw("reactor.partial-write") {
            Some(draw) => 1 + (draw % 7) as usize,
            None => usize::MAX,
        };
        let mut written = 0usize;
        let closed = loop {
            if written == conn.write_buf.len() {
                break false;
            }
            let end = conn.write_buf.len().min(written.saturating_add(cap));
            match (&conn.stream).write(&conn.write_buf[written..end]) {
                Ok(0) => break true,
                Ok(n) => {
                    written += n;
                    if end < conn.write_buf.len() {
                        break false; // injected partial write: simulated WouldBlock
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break true,
            }
        };
        if closed {
            self.close(slot, CloseCause::Orderly);
            return false;
        }
        conn.write_buf.drain(..written);
        conn.write_stalled_since = if conn.write_buf.is_empty() {
            None
        } else if written > 0 || conn.write_stalled_since.is_none() {
            Some(Instant::now())
        } else {
            conn.write_stalled_since
        };
        true
    }

    // ---- mailbox + stalls -----------------------------------------------------

    fn drain_mailbox(&mut self) {
        let (new_conns, completions) = {
            let mut mailbox = self.shared.io[self.idx].mailbox.lock();
            (
                std::mem::take(&mut mailbox.new_conns),
                std::mem::take(&mut mailbox.completions),
            )
        };
        for completion in completions {
            // The connection may have died while the worker computed: route by id.
            if let Some(&slot) = self.by_id.get(&completion.conn_id) {
                self.complete(
                    slot,
                    completion.seq,
                    completion.frame,
                    completion.close_after,
                );
                // Admitting more pipelined frames may now be possible.
                self.pump(slot);
            }
        }
        for stream in new_conns {
            self.install(stream);
        }
    }

    fn sweep_stalls(&mut self) {
        let timeout = self.shared.config.stall_timeout;
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            let read_stalled = conn
                .partial_since
                .is_some_and(|t| now.duration_since(t) > timeout);
            let write_stalled = conn
                .write_stalled_since
                .is_some_and(|t| now.duration_since(t) > timeout);
            if read_stalled || write_stalled {
                self.close(slot, CloseCause::Stalled);
            }
        }
    }
}

/// The best-effort frame written to a connection refused by the connection cap.
fn refusal_frame() -> Vec<u8> {
    let payload = encode_result(&Err::<crate::ServeReply, _>(ServeError::Overloaded));
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BaselineModel;
    use crate::protocol::{decode_result, encode_request, read_frame, write_frame, ServeRequest};
    use crate::registry::ModelSelector;
    use nc_baselines::CardinalityEstimator;
    use nc_schema::Query;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    fn fixed_registry(value: f64) -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(1, "m", Arc::new(BaselineModel::new(Fixed(value))))
            .unwrap();
        registry
    }

    fn request() -> ServeRequest {
        ServeRequest::new(ModelSelector::latest(1, "m"), Query::join(&["t"]))
    }

    fn small_config() -> ReactorConfig {
        ReactorConfig {
            io_threads: 2,
            workers: 2,
            stall_timeout: Duration::from_millis(200),
            ..ReactorConfig::default()
        }
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        let reactor = Reactor::bind(fixed_registry(5.0), "127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        // Write a burst of requests before reading anything.
        for _ in 0..16 {
            write_frame(&mut stream, &encode_request(&request())).unwrap();
        }
        for _ in 0..16 {
            let frame = read_frame(&mut stream).unwrap();
            let reply = decode_result(&frame).unwrap().unwrap();
            assert_eq!(reply.estimate, 5.0);
        }
        assert_eq!(reactor.served(), 16);
        let stats = reactor.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.overloaded, 0);
        reactor.shutdown();
    }

    #[test]
    fn slow_loris_is_disconnected_but_healthy_clients_are_not() {
        let config = ReactorConfig {
            stall_timeout: Duration::from_millis(100),
            ..small_config()
        };
        let reactor = Reactor::bind(fixed_registry(1.0), "127.0.0.1:0", config).unwrap();
        // The loris sends half a frame header and goes quiet.
        let mut loris = TcpStream::connect(reactor.local_addr()).unwrap();
        loris.write_all(&[0x10, 0x00]).unwrap();
        // A healthy client keeps getting served the whole time.
        let mut healthy = TcpStream::connect(reactor.local_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while reactor.stats().stalled_disconnects == 0 {
            assert!(Instant::now() < deadline, "loris never disconnected");
            write_frame(&mut healthy, &encode_request(&request())).unwrap();
            let frame = read_frame(&mut healthy).unwrap();
            assert_eq!(decode_result(&frame).unwrap().unwrap().estimate, 1.0);
            std::thread::sleep(Duration::from_millis(10));
        }
        // The loris's socket is dead: reads see EOF/reset.
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 8];
        assert!(matches!(loris.read(&mut buf), Ok(0) | Err(_)));
        assert_eq!(reactor.stats().stalled_disconnects, 1);
        assert_eq!(reactor.live_connections(), 1); // the healthy one
        reactor.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_overloaded_in_reply_order() {
        use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};
        struct Gate {
            state: Arc<(StdMutex<bool>, StdCondvar)>,
            entered: Arc<AtomicUsize>,
        }
        impl CardinalityEstimator for Gate {
            fn name(&self) -> &str {
                "gate"
            }
            fn estimate(&self, _query: &Query) -> f64 {
                let (lock, cv) = &*self.state;
                let mut open = lock.lock().unwrap_or_else(|p| p.into_inner());
                self.entered.fetch_add(1, Ordering::SeqCst);
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                7.0
            }
        }
        let state = Arc::new((StdMutex::new(false), StdCondvar::new()));
        let entered = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(
                1,
                "m",
                Arc::new(BaselineModel::new(Gate {
                    state: state.clone(),
                    entered: entered.clone(),
                })),
            )
            .unwrap();
        let config = ReactorConfig {
            io_threads: 1,
            workers: 1,
            queue_depth: 1,
            ..ReactorConfig::default()
        };
        let reactor = Reactor::bind(registry, "127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();

        // Pipeline 3 requests: one held inside the gate by the single worker, one in
        // the queue's single slot, one shed by admission control.
        write_frame(&mut stream, &encode_request(&request())).unwrap();
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        write_frame(&mut stream, &encode_request(&request())).unwrap();
        while reactor.stats().queue_depth == 0 {
            std::thread::yield_now();
        }
        write_frame(&mut stream, &encode_request(&request())).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while reactor.stats().overloaded == 0 {
            assert!(Instant::now() < deadline, "third request never shed");
            std::thread::yield_now();
        }

        // Open the gate: replies arrive strictly in request order — two estimates,
        // then the typed Overloaded for the shed request.
        *state.0.lock().unwrap_or_else(|p| p.into_inner()) = true;
        state.1.notify_all();
        for want_ok in [true, true, false] {
            let frame = read_frame(&mut stream).unwrap();
            match decode_result(&frame).unwrap() {
                Ok(reply) => {
                    assert!(want_ok, "expected Overloaded, got {reply:?}");
                    assert_eq!(reply.estimate, 7.0);
                }
                Err(e) => {
                    assert!(!want_ok, "unexpected error {e}");
                    assert_eq!(e, ServeError::Overloaded);
                }
            }
        }
        assert_eq!(reactor.served(), 3);
        reactor.shutdown();
    }

    #[test]
    fn panicking_model_is_an_internal_error_and_the_connection_survives() {
        struct Bomb;
        impl CardinalityEstimator for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn estimate(&self, _query: &Query) -> f64 {
                panic!("kaboom")
            }
        }
        let registry = fixed_registry(3.0);
        registry
            .register(1, "bomb", Arc::new(BaselineModel::new(Bomb)))
            .unwrap();
        let config = ReactorConfig {
            io_threads: 1,
            workers: 1, // the one worker must survive its own catch
            ..ReactorConfig::default()
        };
        let reactor = Reactor::bind(registry, "127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        let bomb_req = ServeRequest::new(ModelSelector::latest(1, "bomb"), Query::join(&["t"]));
        write_frame(&mut stream, &encode_request(&bomb_req)).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        match decode_result(&frame).unwrap() {
            Err(ServeError::Internal(msg)) => assert!(msg.contains("kaboom"), "got {msg:?}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        // Same connection, same worker: still serving.
        write_frame(&mut stream, &encode_request(&request())).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert_eq!(decode_result(&frame).unwrap().unwrap().estimate, 3.0);
        assert_eq!(reactor.served(), 2);
        reactor.shutdown();
    }

    #[test]
    fn oversized_frame_gets_a_protocol_error_then_a_close() {
        let reactor = Reactor::bind(fixed_registry(1.0), "127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        // Declare a frame bigger than MAX_FRAME_LEN.
        stream
            .write_all(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes())
            .unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert!(matches!(
            decode_result(&frame).unwrap(),
            Err(ServeError::Protocol(_))
        ));
        assert!(read_frame(&mut stream).is_err(), "connection must close");
        assert_eq!(reactor.served(), 1);
        reactor.shutdown();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn injected_partial_io_never_corrupts_frames() {
        // Aggressive partial reads and writes re-slice the byte stream without ever
        // dropping or duplicating a byte: every pipelined frame still round-trips.
        let config = ReactorConfig {
            faults: crate::fault::FaultPlan::new(7)
                .point("reactor.partial-read", 500)
                .point("reactor.partial-write", 500)
                .injector(),
            ..small_config()
        };
        let reactor = Reactor::bind(fixed_registry(9.0), "127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        for _ in 0..8 {
            write_frame(&mut stream, &encode_request(&request())).unwrap();
        }
        for _ in 0..8 {
            let frame = read_frame(&mut stream).unwrap();
            assert_eq!(decode_result(&frame).unwrap().unwrap().estimate, 9.0);
        }
        assert_eq!(reactor.served(), 8);
        reactor.shutdown();
    }

    #[test]
    fn wire_deregister_is_journaled_write_ahead() {
        use crate::journal::{RegistryJournal, SharedJournal};
        use crate::protocol::{decode_admin_result, encode_deregister};
        let mut path = std::env::temp_dir();
        path.push(format!(
            "nc-reactor-deregister-{}-{:p}.jsonl",
            std::process::id(),
            &path
        ));
        let _ = std::fs::remove_file(&path);
        let (journal, _) = RegistryJournal::open(path.clone()).unwrap();
        let config = ReactorConfig {
            admin_journal: Some(SharedJournal::new(journal)),
            ..small_config()
        };
        let reactor = Reactor::bind(fixed_registry(2.0), "127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();

        write_frame(&mut stream, &encode_deregister(1, "m")).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        let key = decode_admin_result(&frame).unwrap().unwrap();
        assert_eq!(key.schema_fingerprint, 1);
        assert_eq!(key.name, "m");

        // Routing is gone: estimates and repeat deregisters answer UnknownModel,
        // on the same still-healthy connection.
        write_frame(&mut stream, &encode_request(&request())).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert!(matches!(
            decode_result(&frame).unwrap(),
            Err(ServeError::UnknownModel(_))
        ));
        write_frame(&mut stream, &encode_deregister(1, "m")).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert!(matches!(
            decode_admin_result(&frame).unwrap(),
            Err(ServeError::UnknownModel(_))
        ));

        // Exactly one deregister event hit the journal, before the reply went out.
        let (_, events) = RegistryJournal::open(path.clone()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, "deregister");
        assert_eq!(events[0].name, "m");
        let _ = std::fs::remove_file(&path);
        reactor.shutdown();
    }

    #[test]
    fn wire_stats_reports_the_per_model_split() {
        use crate::protocol::{decode_stats_result, encode_stats_request};
        let reactor = Reactor::bind(fixed_registry(2.0), "127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();

        // A registry with no serving history answers an empty split.
        write_frame(&mut stream, &encode_stats_request()).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert_eq!(decode_stats_result(&frame).unwrap().unwrap(), Vec::new());

        for _ in 0..3 {
            write_frame(&mut stream, &encode_request(&request())).unwrap();
            read_frame(&mut stream).unwrap();
        }
        write_frame(&mut stream, &encode_stats_request()).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        let stats = decode_stats_result(&frame).unwrap().unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].key, ModelKey::new(1, "m", 1));
        assert_eq!(stats[0].served, 3);
        assert!(stats[0].p50_us >= 0.0 && stats[0].queries_per_sec > 0.0);
        // The connection stays healthy for normal requests afterwards.
        write_frame(&mut stream, &encode_request(&request())).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert_eq!(decode_result(&frame).unwrap().unwrap().estimate, 2.0);
        assert_eq!(reactor.served(), 6);
        reactor.shutdown();
    }

    #[test]
    fn precision_autoselects_fast_past_the_queue_depth_threshold() {
        // Threshold 0: every dispatch sees depth >= 0, so every exact request is
        // downgraded — the counter must track them all, and (the fixed baseline has
        // no fast tier) the answers stay correct.
        let config = ReactorConfig {
            fast_precision_queue_depth: Some(0),
            ..small_config()
        };
        let reactor = Reactor::bind(fixed_registry(6.0), "127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        for _ in 0..5 {
            write_frame(&mut stream, &encode_request(&request())).unwrap();
            let frame = read_frame(&mut stream).unwrap();
            assert_eq!(decode_result(&frame).unwrap().unwrap().estimate, 6.0);
        }
        assert_eq!(reactor.stats().fast_autoselected, 5);
        reactor.shutdown();

        // Disabled (the default): nothing is downgraded no matter the backlog.
        let reactor = Reactor::bind(fixed_registry(6.0), "127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        for _ in 0..4 {
            write_frame(&mut stream, &encode_request(&request())).unwrap();
            read_frame(&mut stream).unwrap();
        }
        assert_eq!(reactor.stats().fast_autoselected, 0);
        reactor.shutdown();
    }

    #[test]
    fn connection_cap_refuses_excess_clients() {
        let config = ReactorConfig {
            max_connections: 2,
            ..small_config()
        };
        let reactor = Reactor::bind(fixed_registry(1.0), "127.0.0.1:0", config).unwrap();
        let keep: Vec<TcpStream> = (0..2)
            .map(|_| {
                let mut s = TcpStream::connect(reactor.local_addr()).unwrap();
                // Prove liveness so the accept definitely happened.
                write_frame(&mut s, &encode_request(&request())).unwrap();
                read_frame(&mut s).unwrap();
                s
            })
            .collect();
        let mut extra = TcpStream::connect(reactor.local_addr()).unwrap();
        extra
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // The refused connection gets a best-effort Overloaded frame and/or a close.
        match read_frame(&mut extra) {
            Ok(frame) => assert_eq!(
                decode_result(&frame).unwrap().unwrap_err(),
                ServeError::Overloaded
            ),
            Err(ServeError::Transport(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
        assert!(read_frame(&mut extra).is_err());
        let stats = reactor.stats();
        assert!(stats.overflow_disconnects >= 1);
        // The accept-backlog gauge: the shed happened at the listener, the cap is
        // exported next to the live count, and sheds never exceed overflow drops.
        assert!(stats.accept_sheds >= 1);
        assert!(stats.accept_sheds <= stats.overflow_disconnects);
        assert_eq!(stats.max_connections, 2);
        assert!(stats.live_connections <= stats.max_connections);
        drop(keep);
        reactor.shutdown();
    }
}
