//! The object-safe serving trait that unifies every estimator behind one interface.
//!
//! The registry stores models as `Arc<dyn ServingEstimator>`: a NeuroCard
//! [`EstimatorCore`] serves through its zero-allocation scratch fast path, while any
//! [`CardinalityEstimator`] baseline rides along through the [`BaselineModel`] adapter
//! (which simply ignores the scratch workspace it is offered).  Routing, hot swap, the
//! wire protocol and the benches all speak this trait, so registering a new estimator
//! kind touches nothing but an adapter.

use std::sync::Arc;

use nc_baselines::CardinalityEstimator;
use nc_schema::{JoinSchema, Query};
use neurocard::infer::SamplerScratch;
use neurocard::{EstimateError, EstimatorCore, Precision};

/// An estimator the registry can serve: object-safe, shareable across threads.
pub trait ServingEstimator: Send + Sync {
    /// Short display name (e.g. `"NeuroCard"`, `"Postgres-like"`).
    fn name(&self) -> &str;

    /// Sample budget used when a request does not carry one.  Estimators without a
    /// per-request budget (histogram baselines, ...) return `1`.
    fn default_samples(&self) -> usize;

    /// Answers one request.  `scratch` is a reusable workspace the caller checked out of
    /// a [`crate::ScratchPool`]; estimators with a zero-allocation fast path use it,
    /// everyone else ignores it.
    fn serve(
        &self,
        query: &Query,
        samples: usize,
        scratch: &mut SamplerScratch,
    ) -> Result<f64, EstimateError>;

    /// [`ServingEstimator::serve`] with an inference tier.  Estimators without a fast
    /// tier (the baselines) ignore `precision` and serve exactly — the default — so the
    /// knob degrades gracefully across the whole model zoo.
    fn serve_with_precision(
        &self,
        query: &Query,
        samples: usize,
        scratch: &mut SamplerScratch,
        _precision: Precision,
    ) -> Result<f64, EstimateError> {
        self.serve(query, samples, scratch)
    }

    /// Approximate size of the model state in bytes (`0` if not materialised).
    fn size_bytes(&self) -> usize {
        0
    }
}

// The registry stores `Arc<dyn ServingEstimator>`; keep the trait object-safe.
const _: Option<&dyn ServingEstimator> = None;

/// The scratch-pool fast path: an artifact-loaded NeuroCard core serves through
/// [`EstimatorCore::try_estimate_with_samples_scratch`], which performs no steady-state
/// allocation and is bit-identical to sequential [`EstimatorCore::estimate`] calls.
impl ServingEstimator for EstimatorCore {
    fn name(&self) -> &str {
        "NeuroCard"
    }

    fn default_samples(&self) -> usize {
        self.config().progressive_samples
    }

    fn serve(
        &self,
        query: &Query,
        samples: usize,
        scratch: &mut SamplerScratch,
    ) -> Result<f64, EstimateError> {
        self.try_estimate_with_samples_scratch(query, samples, scratch)
    }

    fn serve_with_precision(
        &self,
        query: &Query,
        samples: usize,
        scratch: &mut SamplerScratch,
        precision: Precision,
    ) -> Result<f64, EstimateError> {
        self.try_estimate_with_samples_scratch_precision(query, samples, scratch, precision)
    }

    fn size_bytes(&self) -> usize {
        EstimatorCore::size_bytes(self)
    }
}

/// Adapter that serves any [`CardinalityEstimator`] (the baselines of the paper's
/// evaluation, or a `Box<dyn CardinalityEstimator + Send + Sync>`) through the registry.
///
/// Baselines have no per-request sample budget — the `samples` argument is ignored — and
/// no scratch fast path.  When built [`BaselineModel::with_schema`], queries are
/// validated first so malformed requests surface as typed
/// [`EstimateError::InvalidQuery`] errors instead of whatever the estimator does with
/// garbage (several baselines panic).
pub struct BaselineModel<E> {
    estimator: E,
    schema: Option<Arc<JoinSchema>>,
}

impl<E: CardinalityEstimator + Send + Sync> BaselineModel<E> {
    /// Wraps an estimator without query validation.
    pub fn new(estimator: E) -> Self {
        BaselineModel {
            estimator,
            schema: None,
        }
    }

    /// Wraps an estimator and validates every query against `schema` before serving.
    pub fn with_schema(estimator: E, schema: Arc<JoinSchema>) -> Self {
        BaselineModel {
            estimator,
            schema: Some(schema),
        }
    }
}

impl<E: CardinalityEstimator + Send + Sync> ServingEstimator for BaselineModel<E> {
    fn name(&self) -> &str {
        self.estimator.name()
    }

    fn default_samples(&self) -> usize {
        1
    }

    fn serve(
        &self,
        query: &Query,
        _samples: usize,
        _scratch: &mut SamplerScratch,
    ) -> Result<f64, EstimateError> {
        if let Some(schema) = &self.schema {
            query
                .validate(schema)
                .map_err(|e| EstimateError::InvalidQuery(e.to_string()))?;
        }
        Ok(self.estimator.estimate(query))
    }

    fn size_bytes(&self) -> usize {
        self.estimator.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::JoinEdge;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
        fn size_bytes(&self) -> usize {
            16
        }
    }

    #[test]
    fn baseline_adapter_forwards_and_validates() {
        let schema = Arc::new(
            JoinSchema::new(
                vec!["A".into(), "B".into()],
                vec![JoinEdge::parse("A.x", "B.x")],
                "A",
            )
            .unwrap(),
        );
        let mut scratch = SamplerScratch::new();

        let unchecked = BaselineModel::new(Fixed(42.0));
        assert_eq!(unchecked.name(), "fixed");
        assert_eq!(unchecked.default_samples(), 1);
        assert_eq!(unchecked.size_bytes(), 16);
        assert_eq!(
            unchecked.serve(&Query::join(&["A"]), 99, &mut scratch),
            Ok(42.0)
        );

        let checked = BaselineModel::with_schema(Fixed(7.0), schema);
        assert_eq!(
            checked.serve(&Query::join(&["A", "B"]), 1, &mut scratch),
            Ok(7.0)
        );
        // Unknown table → typed error instead of a downstream panic.
        assert!(matches!(
            checked.serve(&Query::join(&["nope"]), 1, &mut scratch),
            Err(EstimateError::InvalidQuery(_))
        ));
        // The adapter is registrable as a trait object.
        let _obj: Arc<dyn ServingEstimator> = Arc::new(BaselineModel::new(Fixed(1.0)));
    }
}
