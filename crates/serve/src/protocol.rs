//! The transport-independent request/response protocol.
//!
//! [`ServeRequest`] / [`ServeReply`] are the one pair of types every serving surface
//! speaks: the in-process [`crate::RegistryService`], the TCP front-end, and the
//! benches.  This module also defines their **wire form**: a length-prefixed binary
//! codec built on the checked [`nc_storage::binio`] primitives, so a corrupt or hostile
//! stream produces a typed [`ServeError::Protocol`] instead of a panic or an oversized
//! allocation.
//!
//! Framing (all integers little-endian):
//!
//! ```text
//! frame      u32 payload length (≤ MAX_FRAME_LEN), payload bytes
//! request    0x01, selector, query, samples, [precision]
//!            (precision byte 0x01 = fast tier, appended only when requested;
//!            absent = exact, so pre-precision encodings stay byte-identical)
//! reply      0x02, key, estimate f64 bits as u64 (bit-exact across the wire),
//!            degraded u8 (1 = served by the stats fallback, not a registered model)
//! error      0x03, error code u8, error fields
//! deregister 0x04, fingerprint u64, name string       (admin request)
//! deregistered 0x05, key                              (admin reply: the removed version)
//! stats      0x06                                     (admin request, no operands)
//! stats-reply 0x07, count u32, per model: key, served u64,
//!            p50/p99/qps f64 bits as u64              (admin reply, sorted by key)
//! selector   0x00 key | 0x01 fingerprint u64, has_name u8, [name]
//! key        fingerprint u64, name string, version u64
//! query      table count u32, tables; filter count u32, filters
//! filter     table, column, op u8, literal count u32, literals (binio Value encoding)
//! string     u64 length, UTF-8 bytes (binio)
//! ```
//!
//! The estimate crosses the wire as raw `f64` bits, so the determinism contract —
//! registry-routed estimates are bit-identical to direct [`neurocard::EstimatorCore`]
//! calls — survives serialisation exactly.

use std::io::{Read, Write};

use nc_schema::{CompareOp, Predicate, Query, TableFilter};
use nc_storage::binio::{put_string, BinError, BinReader};
use nc_storage::Value;
use neurocard::{EstimateError, Precision};

use crate::registry::{ModelKey, ModelSelector, ModelStats};
use crate::ServeError;

/// A routing-aware estimation request: which model, which query, how many samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Which model serves this request.
    pub selector: ModelSelector,
    /// The cardinality query.
    pub query: Query,
    /// Progressive-sample budget; `None` uses the selected model's default.
    pub samples: Option<usize>,
    /// Which inference tier answers: [`Precision::Exact`] (the default — bit-identical to
    /// direct core calls) or [`Precision::Fast`] (SIMD kernels over bf16 weights, gated by
    /// the q-error-delta bound).  Estimators without a fast tier serve exactly either way.
    pub precision: Precision,
}

impl ServeRequest {
    /// A request with the model's default sample budget, served at [`Precision::Exact`].
    pub fn new(selector: ModelSelector, query: Query) -> Self {
        ServeRequest {
            selector,
            query,
            samples: None,
            precision: Precision::Exact,
        }
    }

    /// Sets an explicit sample budget (builder style).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = Some(samples);
        self
    }

    /// Selects the inference tier (builder style).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// A successful estimate, stamped with the exact model version that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReply {
    /// The version that served the request (selectors may be indirect; this never is).
    /// Degraded replies carry a synthetic key: the fallback estimator's name at
    /// version `0` — a version no registered model can ever hold.
    pub key: ModelKey,
    /// The estimated row count.
    pub estimate: f64,
    /// `true` when the estimate came from the statistics fallback (no live model
    /// matched the selector); the number is a coarse independence-assumption
    /// estimate, not a learned one.  Flagged on the wire so planners can weigh it.
    pub degraded: bool,
}

/// Frames larger than this are rejected before allocation (corrupt length prefix or a
/// hostile peer; real requests are a few hundred bytes).
pub const MAX_FRAME_LEN: usize = 1 << 24;

const MSG_REQUEST: u8 = 0x01;
const MSG_REPLY: u8 = 0x02;
const MSG_ERROR: u8 = 0x03;
pub(crate) const MSG_DEREGISTER: u8 = 0x04;
const MSG_DEREGISTERED: u8 = 0x05;
pub(crate) const MSG_STATS: u8 = 0x06;
const MSG_STATS_REPLY: u8 = 0x07;

const SEL_EXACT: u8 = 0x00;
const SEL_LATEST: u8 = 0x01;

fn op_tag(op: &CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::Lt => 1,
        CompareOp::Le => 2,
        CompareOp::Gt => 3,
        CompareOp::Ge => 4,
        CompareOp::In => 5,
    }
}

fn op_from_tag(tag: u8) -> Result<CompareOp, ServeError> {
    Ok(match tag {
        0 => CompareOp::Eq,
        1 => CompareOp::Lt,
        2 => CompareOp::Le,
        3 => CompareOp::Gt,
        4 => CompareOp::Ge,
        5 => CompareOp::In,
        other => return Err(protocol_err(format!("unknown compare-op tag {other}"))),
    })
}

fn protocol_err(message: impl std::fmt::Display) -> ServeError {
    ServeError::Protocol(message.to_string())
}

fn bin(e: BinError) -> ServeError {
    protocol_err(e)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_key(out: &mut Vec<u8>, key: &ModelKey) {
    put_u64(out, key.schema_fingerprint);
    put_string(out, &key.name);
    put_u64(out, key.version);
}

fn decode_key(r: &mut BinReader<'_>) -> Result<ModelKey, ServeError> {
    Ok(ModelKey {
        schema_fingerprint: r.u64().map_err(bin)?,
        name: r.string().map_err(bin)?,
        version: r.u64().map_err(bin)?,
    })
}

fn encode_selector(out: &mut Vec<u8>, selector: &ModelSelector) {
    match selector {
        ModelSelector::Exact(key) => {
            out.push(SEL_EXACT);
            encode_key(out, key);
        }
        ModelSelector::Latest {
            schema_fingerprint,
            name,
        } => {
            out.push(SEL_LATEST);
            put_u64(out, *schema_fingerprint);
            match name {
                Some(name) => {
                    out.push(1);
                    put_string(out, name);
                }
                None => out.push(0),
            }
        }
    }
}

fn decode_selector(r: &mut BinReader<'_>) -> Result<ModelSelector, ServeError> {
    match r.u8().map_err(bin)? {
        SEL_EXACT => Ok(ModelSelector::Exact(decode_key(r)?)),
        SEL_LATEST => {
            let schema_fingerprint = r.u64().map_err(bin)?;
            let name = match r.u8().map_err(bin)? {
                0 => None,
                1 => Some(r.string().map_err(bin)?),
                other => return Err(protocol_err(format!("bad name-presence byte {other}"))),
            };
            Ok(ModelSelector::Latest {
                schema_fingerprint,
                name,
            })
        }
        other => Err(protocol_err(format!("unknown selector tag {other}"))),
    }
}

fn encode_query(out: &mut Vec<u8>, query: &Query) {
    put_u32(out, query.tables.len() as u32);
    for t in &query.tables {
        put_string(out, t);
    }
    put_u32(out, query.filters.len() as u32);
    for f in &query.filters {
        put_string(out, &f.table);
        put_string(out, &f.column);
        out.push(op_tag(&f.predicate.op));
        put_u32(out, f.predicate.literals.len() as u32);
        for v in &f.predicate.literals {
            v.write_binary(out);
        }
    }
}

fn decode_query(r: &mut BinReader<'_>) -> Result<Query, ServeError> {
    let num_tables = r.u32().map_err(bin)? as usize;
    let mut tables = Vec::with_capacity(num_tables.min(1 << 16));
    for _ in 0..num_tables {
        tables.push(r.string().map_err(bin)?);
    }
    let num_filters = r.u32().map_err(bin)? as usize;
    let mut filters = Vec::with_capacity(num_filters.min(1 << 16));
    for _ in 0..num_filters {
        let table = r.string().map_err(bin)?;
        let column = r.string().map_err(bin)?;
        let op = op_from_tag(r.u8().map_err(bin)?)?;
        let num_literals = r.u32().map_err(bin)? as usize;
        let mut literals = Vec::with_capacity(num_literals.min(1 << 16));
        for _ in 0..num_literals {
            literals.push(Value::read_binary(r).map_err(bin)?);
        }
        // Predicate::new asserts its invariants (literal arity); re-validate here so a
        // hostile stream cannot reach the panic.
        match op {
            CompareOp::In if literals.is_empty() => {
                return Err(protocol_err("IN predicate with no literals"));
            }
            CompareOp::In => {}
            _ if literals.len() != 1 => {
                return Err(protocol_err(format!(
                    "binary predicate with {} literals",
                    literals.len()
                )));
            }
            _ => {}
        }
        filters.push(TableFilter {
            table,
            column,
            predicate: Predicate { op, literals },
        });
    }
    Ok(Query { tables, filters })
}

fn error_code(e: &ServeError) -> (u8, Vec<u8>) {
    let mut fields = Vec::new();
    let code = match e {
        ServeError::Estimate(EstimateError::InvalidQuery(msg)) => {
            put_string(&mut fields, msg);
            0
        }
        ServeError::Estimate(EstimateError::UnknownColumn { table, column }) => {
            put_string(&mut fields, table);
            put_string(&mut fields, column);
            1
        }
        ServeError::Estimate(EstimateError::InvalidSampleCount) => 2,
        ServeError::UnknownModel(selector) => {
            put_string(&mut fields, selector);
            3
        }
        ServeError::StaleVersion { requested, current } => {
            encode_key(&mut fields, requested);
            encode_key(&mut fields, current);
            4
        }
        ServeError::AlreadyRegistered(key) => {
            encode_key(&mut fields, key);
            5
        }
        ServeError::ShuttingDown => 6,
        ServeError::Transport(msg) => {
            put_string(&mut fields, msg);
            7
        }
        ServeError::Protocol(msg) => {
            put_string(&mut fields, msg);
            8
        }
        ServeError::Overloaded => 9,
        ServeError::Internal(msg) => {
            put_string(&mut fields, msg);
            10
        }
        ServeError::Timeout => 11,
    };
    (code, fields)
}

fn decode_error(r: &mut BinReader<'_>) -> Result<ServeError, ServeError> {
    Ok(match r.u8().map_err(bin)? {
        0 => ServeError::Estimate(EstimateError::InvalidQuery(r.string().map_err(bin)?)),
        1 => ServeError::Estimate(EstimateError::UnknownColumn {
            table: r.string().map_err(bin)?,
            column: r.string().map_err(bin)?,
        }),
        2 => ServeError::Estimate(EstimateError::InvalidSampleCount),
        3 => ServeError::UnknownModel(r.string().map_err(bin)?),
        4 => ServeError::StaleVersion {
            requested: decode_key(r)?,
            current: decode_key(r)?,
        },
        5 => ServeError::AlreadyRegistered(decode_key(r)?),
        6 => ServeError::ShuttingDown,
        7 => ServeError::Transport(r.string().map_err(bin)?),
        8 => ServeError::Protocol(r.string().map_err(bin)?),
        9 => ServeError::Overloaded,
        10 => ServeError::Internal(r.string().map_err(bin)?),
        11 => ServeError::Timeout,
        other => return Err(protocol_err(format!("unknown error code {other}"))),
    })
}

/// Encodes a request payload (unframed).
pub fn encode_request(request: &ServeRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.push(MSG_REQUEST);
    encode_selector(&mut out, &request.selector);
    encode_query(&mut out, &request.query);
    match request.samples {
        Some(n) => {
            out.push(1);
            put_u64(&mut out, n as u64);
        }
        None => out.push(0),
    }
    // Appended only for the fast tier: exact requests keep the pre-precision encoding
    // byte-for-byte, so old clients and recorded frames stay valid.
    if request.precision == Precision::Fast {
        out.push(1);
    }
    out
}

/// Decodes a request payload produced by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> Result<ServeRequest, ServeError> {
    let mut r = BinReader::new(payload);
    if r.u8().map_err(bin)? != MSG_REQUEST {
        return Err(protocol_err("payload is not a request"));
    }
    let selector = decode_selector(&mut r)?;
    let query = decode_query(&mut r)?;
    let samples = match r.u8().map_err(bin)? {
        0 => None,
        1 => {
            let n = r.u64().map_err(bin)?;
            Some(usize::try_from(n).map_err(|_| protocol_err("sample budget overflows usize"))?)
        }
        other => return Err(protocol_err(format!("bad samples-presence byte {other}"))),
    };
    let precision = if r.is_empty() {
        Precision::Exact
    } else {
        match r.u8().map_err(bin)? {
            1 => Precision::Fast,
            other => return Err(protocol_err(format!("bad precision byte {other}"))),
        }
    };
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after request",
            r.remaining()
        )));
    }
    Ok(ServeRequest {
        selector,
        query,
        samples,
        precision,
    })
}

/// Encodes a reply-or-error payload (unframed).
pub fn encode_result(result: &Result<ServeReply, ServeError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match result {
        Ok(reply) => {
            out.push(MSG_REPLY);
            encode_key(&mut out, &reply.key);
            put_u64(&mut out, reply.estimate.to_bits());
            out.push(u8::from(reply.degraded));
        }
        Err(e) => {
            out.push(MSG_ERROR);
            let (code, fields) = error_code(e);
            out.push(code);
            out.extend_from_slice(&fields);
        }
    }
    out
}

/// Decodes a payload produced by [`encode_result`].
///
/// The outer `Err` is a local decode failure; a successfully decoded *remote* error
/// comes back as `Ok(Err(...))`.
#[allow(clippy::type_complexity)]
pub fn decode_result(payload: &[u8]) -> Result<Result<ServeReply, ServeError>, ServeError> {
    let mut r = BinReader::new(payload);
    let result = match r.u8().map_err(bin)? {
        MSG_REPLY => {
            let key = decode_key(&mut r)?;
            let estimate = f64::from_bits(r.u64().map_err(bin)?);
            let degraded = match r.u8().map_err(bin)? {
                0 => false,
                1 => true,
                other => return Err(protocol_err(format!("bad degraded flag {other}"))),
            };
            Ok(ServeReply {
                key,
                estimate,
                degraded,
            })
        }
        MSG_ERROR => Err(decode_error(&mut r)?),
        other => return Err(protocol_err(format!("unknown message tag {other}"))),
    };
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after response",
            r.remaining()
        )));
    }
    Ok(result)
}

/// Encodes an admin deregister request (unframed): remove `(schema_fingerprint,
/// name)` from the routing table.
pub fn encode_deregister(schema_fingerprint: u64, name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.push(MSG_DEREGISTER);
    put_u64(&mut out, schema_fingerprint);
    put_string(&mut out, name);
    out
}

/// Decodes a payload produced by [`encode_deregister`].
pub fn decode_deregister(payload: &[u8]) -> Result<(u64, String), ServeError> {
    let mut r = BinReader::new(payload);
    if r.u8().map_err(bin)? != MSG_DEREGISTER {
        return Err(protocol_err("payload is not a deregister request"));
    }
    let schema_fingerprint = r.u64().map_err(bin)?;
    let name = r.string().map_err(bin)?;
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after deregister request",
            r.remaining()
        )));
    }
    Ok((schema_fingerprint, name))
}

/// Encodes the admin reply to a deregister: the removed version on success, the
/// shared error encoding otherwise.
pub fn encode_admin_result(result: &Result<ModelKey, ServeError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    match result {
        Ok(key) => {
            out.push(MSG_DEREGISTERED);
            encode_key(&mut out, key);
        }
        Err(e) => {
            out.push(MSG_ERROR);
            let (code, fields) = error_code(e);
            out.push(code);
            out.extend_from_slice(&fields);
        }
    }
    out
}

/// Decodes a payload produced by [`encode_admin_result`].  As with
/// [`decode_result`], the outer `Err` is a local decode failure; a decoded remote
/// error is `Ok(Err(...))`.
#[allow(clippy::type_complexity)]
pub fn decode_admin_result(payload: &[u8]) -> Result<Result<ModelKey, ServeError>, ServeError> {
    let mut r = BinReader::new(payload);
    let result = match r.u8().map_err(bin)? {
        MSG_DEREGISTERED => Ok(decode_key(&mut r)?),
        MSG_ERROR => Err(decode_error(&mut r)?),
        other => return Err(protocol_err(format!("unknown admin message tag {other}"))),
    };
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after admin response",
            r.remaining()
        )));
    }
    Ok(result)
}

/// Encodes an admin stats request (unframed): report the registry's per-model
/// latency/throughput split.  The request carries no operands — the tag is the
/// whole payload.
pub fn encode_stats_request() -> Vec<u8> {
    vec![MSG_STATS]
}

/// Decodes a payload produced by [`encode_stats_request`].
pub fn decode_stats_request(payload: &[u8]) -> Result<(), ServeError> {
    let mut r = BinReader::new(payload);
    if r.u8().map_err(bin)? != MSG_STATS {
        return Err(protocol_err("payload is not a stats request"));
    }
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after stats request",
            r.remaining()
        )));
    }
    Ok(())
}

/// Encodes the admin reply to a stats request: the per-model split on success
/// (sorted by key, as [`crate::ModelRegistry::model_stats`] returns it), the shared
/// error encoding otherwise.  Latency and rate figures cross the wire as raw `f64`
/// bits, so monitors see exactly what the server measured.
pub fn encode_stats_result(result: &Result<Vec<ModelStats>, ServeError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match result {
        Ok(stats) => {
            out.push(MSG_STATS_REPLY);
            put_u32(&mut out, stats.len() as u32);
            for s in stats {
                encode_key(&mut out, &s.key);
                put_u64(&mut out, s.served);
                put_u64(&mut out, s.p50_us.to_bits());
                put_u64(&mut out, s.p99_us.to_bits());
                put_u64(&mut out, s.queries_per_sec.to_bits());
            }
        }
        Err(e) => {
            out.push(MSG_ERROR);
            let (code, fields) = error_code(e);
            out.push(code);
            out.extend_from_slice(&fields);
        }
    }
    out
}

/// Decodes a payload produced by [`encode_stats_result`].  As with
/// [`decode_result`], the outer `Err` is a local decode failure; a decoded remote
/// error is `Ok(Err(...))`.
#[allow(clippy::type_complexity)]
pub fn decode_stats_result(
    payload: &[u8],
) -> Result<Result<Vec<ModelStats>, ServeError>, ServeError> {
    let mut r = BinReader::new(payload);
    let result = match r.u8().map_err(bin)? {
        MSG_STATS_REPLY => {
            let count = r.u32().map_err(bin)? as usize;
            let mut stats = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let key = decode_key(&mut r)?;
                let served = r.u64().map_err(bin)?;
                let p50_us = f64::from_bits(r.u64().map_err(bin)?);
                let p99_us = f64::from_bits(r.u64().map_err(bin)?);
                let queries_per_sec = f64::from_bits(r.u64().map_err(bin)?);
                stats.push(ModelStats {
                    key,
                    served,
                    p50_us,
                    p99_us,
                    queries_per_sec,
                });
            }
            Ok(stats)
        }
        MSG_ERROR => Err(decode_error(&mut r)?),
        other => return Err(protocol_err(format!("unknown stats message tag {other}"))),
    };
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after stats response",
            r.remaining()
        )));
    }
    Ok(result)
}

/// Maps an I/O failure to the typed serve error: socket-timeout kinds become
/// [`ServeError::Timeout`] (the client sets SO_RCVTIMEO/SO_SNDTIMEO), the rest
/// [`ServeError::Transport`].
fn io_err(e: std::io::Error) -> ServeError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ServeError::Timeout,
        _ => ServeError::Transport(e.to_string()),
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(protocol_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Reads one length-prefixed frame, rejecting oversized length prefixes before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(io_err)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(protocol_err(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(io_err)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::Predicate;

    fn sample_request() -> ServeRequest {
        ServeRequest::new(
            ModelSelector::Exact(ModelKey::new(0xfeed, "neurocard", 3)),
            Query::join(&["A", "B"])
                .filter("A", "c", Predicate::eq(7i64))
                .filter(
                    "B",
                    "tag",
                    Predicate::isin(vec![Value::from("x"), Value::Null]),
                )
                .filter("A", "d", Predicate::le("zz")),
        )
        .with_samples(64)
    }

    #[test]
    fn request_round_trips() {
        let requests = [
            sample_request(),
            sample_request().with_precision(Precision::Fast),
            ServeRequest::new(ModelSelector::latest(1, "m"), Query::join(&["t"])),
            ServeRequest::new(
                ModelSelector::latest_for_schema(u64::MAX),
                Query::join(&["t"]),
            ),
        ];
        for request in &requests {
            let bytes = encode_request(request);
            assert_eq!(&decode_request(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn precision_byte_is_fast_only_and_backward_compatible() {
        let exact = sample_request();
        let fast = sample_request().with_precision(Precision::Fast);
        let exact_bytes = encode_request(&exact);
        let fast_bytes = encode_request(&fast);
        // Exact requests keep the pre-precision encoding: the fast frame is the exact
        // frame plus exactly one trailing tier byte.
        assert_eq!(fast_bytes.len(), exact_bytes.len() + 1);
        assert_eq!(&fast_bytes[..exact_bytes.len()], &exact_bytes[..]);
        assert_eq!(
            decode_request(&exact_bytes).unwrap().precision,
            Precision::Exact
        );
        assert_eq!(
            decode_request(&fast_bytes).unwrap().precision,
            Precision::Fast
        );
        // Only 0x01 is a legal tier byte — anything else is trailing garbage.
        let mut bad = exact_bytes.clone();
        bad.push(2);
        assert!(matches!(decode_request(&bad), Err(ServeError::Protocol(_))));
        let mut extra = fast_bytes.clone();
        extra.push(1);
        assert!(decode_request(&extra).is_err());
    }

    #[test]
    fn results_round_trip_bit_exactly() {
        for degraded in [false, true] {
            let reply = ServeReply {
                key: ModelKey::new(42, "m", 9),
                estimate: 1234.567_891_011e-3,
                degraded,
            };
            let back = decode_result(&encode_result(&Ok(reply.clone())))
                .unwrap()
                .unwrap();
            assert_eq!(back.key, reply.key);
            assert_eq!(back.estimate.to_bits(), reply.estimate.to_bits());
            assert_eq!(back.degraded, degraded);
        }

        let errors = [
            ServeError::Estimate(EstimateError::InvalidQuery("boom".into())),
            ServeError::Estimate(EstimateError::UnknownColumn {
                table: "t".into(),
                column: "c".into(),
            }),
            ServeError::Estimate(EstimateError::InvalidSampleCount),
            ServeError::UnknownModel("0000000000000001/m@latest".into()),
            ServeError::StaleVersion {
                requested: ModelKey::new(1, "m", 1),
                current: ModelKey::new(1, "m", 2),
            },
            ServeError::AlreadyRegistered(ModelKey::new(1, "m", 1)),
            ServeError::ShuttingDown,
            ServeError::Overloaded,
            ServeError::Internal("estimator panicked: boom".into()),
            ServeError::Transport("connection reset".into()),
            ServeError::Protocol("bad tag".into()),
            ServeError::Timeout,
        ];
        for e in errors {
            let back = decode_result(&encode_result(&Err(e.clone()))).unwrap();
            assert_eq!(back, Err(e));
        }
    }

    #[test]
    fn admin_deregister_round_trips() {
        let bytes = encode_deregister(0xfeed_beef_dead_cafe, "neurocard");
        assert_eq!(
            decode_deregister(&bytes).unwrap(),
            (0xfeed_beef_dead_cafe, "neurocard".to_string())
        );
        // Results: removed key, and the shared error encoding.
        let key = ModelKey::new(7, "m", 4);
        let ok = encode_admin_result(&Ok(key.clone()));
        assert_eq!(decode_admin_result(&ok).unwrap(), Ok(key));
        let err = encode_admin_result(&Err(ServeError::UnknownModel("x".into())));
        assert_eq!(
            decode_admin_result(&err).unwrap(),
            Err(ServeError::UnknownModel("x".into()))
        );
        // Corruption: truncation at every length errors cleanly, trailing bytes and
        // cross-type decodes are rejected.
        for cut in 0..bytes.len() {
            assert!(decode_deregister(&bytes[..cut]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_deregister(&padded).is_err());
        assert!(decode_request(&bytes).is_err());
        assert!(decode_admin_result(&bytes).is_err());
        let mut padded_ok = encode_admin_result(&Ok(ModelKey::new(1, "m", 1)));
        padded_ok.push(9);
        assert!(decode_admin_result(&padded_ok).is_err());
    }

    #[test]
    fn admin_stats_round_trips() {
        let bytes = encode_stats_request();
        decode_stats_request(&bytes).unwrap();
        // Operand-free request: trailing bytes and cross-type decodes are rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_stats_request(&padded).is_err());
        assert!(decode_request(&bytes).is_err());
        assert!(decode_deregister(&bytes).is_err());

        // Reply: empty and multi-model, f64 figures bit-exact across the wire.
        let empty = encode_stats_result(&Ok(Vec::new()));
        assert_eq!(decode_stats_result(&empty).unwrap(), Ok(Vec::new()));
        let stats = vec![
            ModelStats {
                key: ModelKey::new(7, "m", 1),
                served: 42,
                p50_us: 13.25,
                p99_us: 99.031_25,
                queries_per_sec: 1234.567_891_011e-3,
            },
            ModelStats {
                key: ModelKey::new(7, "m", 2),
                served: 0,
                p50_us: 0.0,
                p99_us: 0.0,
                queries_per_sec: 0.0,
            },
        ];
        let ok = encode_stats_result(&Ok(stats.clone()));
        let back = decode_stats_result(&ok).unwrap().unwrap();
        assert_eq!(back.len(), 2);
        for (b, s) in back.iter().zip(&stats) {
            assert_eq!(b.key, s.key);
            assert_eq!(b.served, s.served);
            assert_eq!(b.p50_us.to_bits(), s.p50_us.to_bits());
            assert_eq!(b.p99_us.to_bits(), s.p99_us.to_bits());
            assert_eq!(b.queries_per_sec.to_bits(), s.queries_per_sec.to_bits());
        }
        // Shared error encoding, truncation at every length, trailing garbage.
        let err = encode_stats_result(&Err(ServeError::Overloaded));
        assert_eq!(
            decode_stats_result(&err).unwrap(),
            Err(ServeError::Overloaded)
        );
        for cut in 0..ok.len() {
            assert!(decode_stats_result(&ok[..cut]).is_err());
        }
        let mut padded_ok = ok.clone();
        padded_ok.push(0);
        assert!(decode_stats_result(&padded_ok).is_err());
        assert!(decode_admin_result(&ok).is_err());
    }

    #[test]
    fn socket_timeouts_surface_as_typed_timeout() {
        struct TimesOut;
        impl std::io::Read for TimesOut {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "rcvtimeo",
                ))
            }
        }
        impl std::io::Write for TimesOut {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::TimedOut))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert_eq!(read_frame(&mut TimesOut), Err(ServeError::Timeout));
        assert_eq!(write_frame(&mut TimesOut, b"x"), Err(ServeError::Timeout));
    }

    #[test]
    fn corrupt_payloads_error_cleanly() {
        let bytes = encode_request(&sample_request());
        // Truncation at every length errors (never panics).
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err());
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
        // Wrong message tag.
        let mut wrong = bytes.clone();
        wrong[0] = 0x7F;
        assert!(matches!(
            decode_request(&wrong),
            Err(ServeError::Protocol(_))
        ));
        // A request is not a result and vice versa.
        assert!(decode_result(&bytes).is_err());
        // Hostile IN-arity payloads cannot reach Predicate::new's assert.
        let evil = {
            let mut out = Vec::new();
            out.push(MSG_REQUEST);
            encode_selector(&mut out, &ModelSelector::latest(0, "m"));
            put_u32(&mut out, 1);
            put_string(&mut out, "t");
            put_u32(&mut out, 1); // one filter
            put_string(&mut out, "t");
            put_string(&mut out, "c");
            out.push(0); // Eq
            put_u32(&mut out, 2); // ...with two literals
            Value::Int(1).write_binary(&mut out);
            Value::Int(2).write_binary(&mut out);
            out.push(0);
            out
        };
        assert!(matches!(
            decode_request(&evil),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = encode_request(&sample_request());
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"second");
        // EOF → transport error.
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Transport(_))
        ));
        // A hostile length prefix is rejected before allocation.
        let mut evil = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut evil),
            Err(ServeError::Protocol(_))
        ));
    }
}
