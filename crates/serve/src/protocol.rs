//! The transport-independent request/response protocol.
//!
//! [`ServeRequest`] / [`ServeReply`] are the one pair of types every serving surface
//! speaks: the in-process [`crate::RegistryService`], the TCP front-end, and the
//! benches.  This module also defines their **wire form**: a length-prefixed binary
//! codec built on the checked [`nc_storage::binio`] primitives, so a corrupt or hostile
//! stream produces a typed [`ServeError::Protocol`] instead of a panic or an oversized
//! allocation.
//!
//! Framing (all integers little-endian):
//!
//! ```text
//! frame      u32 payload length (≤ MAX_FRAME_LEN), payload bytes
//! request    0x01, selector, query, samples
//! reply      0x02, key, estimate f64 bits as u64   (bit-exact across the wire)
//! error      0x03, error code u8, error fields
//! selector   0x00 key | 0x01 fingerprint u64, has_name u8, [name]
//! key        fingerprint u64, name string, version u64
//! query      table count u32, tables; filter count u32, filters
//! filter     table, column, op u8, literal count u32, literals (binio Value encoding)
//! string     u64 length, UTF-8 bytes (binio)
//! ```
//!
//! The estimate crosses the wire as raw `f64` bits, so the determinism contract —
//! registry-routed estimates are bit-identical to direct [`neurocard::EstimatorCore`]
//! calls — survives serialisation exactly.

use std::io::{Read, Write};

use nc_schema::{CompareOp, Predicate, Query, TableFilter};
use nc_storage::binio::{put_string, BinError, BinReader};
use nc_storage::Value;
use neurocard::EstimateError;

use crate::registry::{ModelKey, ModelSelector};
use crate::ServeError;

/// A routing-aware estimation request: which model, which query, how many samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Which model serves this request.
    pub selector: ModelSelector,
    /// The cardinality query.
    pub query: Query,
    /// Progressive-sample budget; `None` uses the selected model's default.
    pub samples: Option<usize>,
}

impl ServeRequest {
    /// A request with the model's default sample budget.
    pub fn new(selector: ModelSelector, query: Query) -> Self {
        ServeRequest {
            selector,
            query,
            samples: None,
        }
    }

    /// Sets an explicit sample budget (builder style).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = Some(samples);
        self
    }
}

/// A successful estimate, stamped with the exact model version that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReply {
    /// The version that served the request (selectors may be indirect; this never is).
    pub key: ModelKey,
    /// The estimated row count.
    pub estimate: f64,
}

/// Frames larger than this are rejected before allocation (corrupt length prefix or a
/// hostile peer; real requests are a few hundred bytes).
pub const MAX_FRAME_LEN: usize = 1 << 24;

const MSG_REQUEST: u8 = 0x01;
const MSG_REPLY: u8 = 0x02;
const MSG_ERROR: u8 = 0x03;

const SEL_EXACT: u8 = 0x00;
const SEL_LATEST: u8 = 0x01;

fn op_tag(op: &CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::Lt => 1,
        CompareOp::Le => 2,
        CompareOp::Gt => 3,
        CompareOp::Ge => 4,
        CompareOp::In => 5,
    }
}

fn op_from_tag(tag: u8) -> Result<CompareOp, ServeError> {
    Ok(match tag {
        0 => CompareOp::Eq,
        1 => CompareOp::Lt,
        2 => CompareOp::Le,
        3 => CompareOp::Gt,
        4 => CompareOp::Ge,
        5 => CompareOp::In,
        other => return Err(protocol_err(format!("unknown compare-op tag {other}"))),
    })
}

fn protocol_err(message: impl std::fmt::Display) -> ServeError {
    ServeError::Protocol(message.to_string())
}

fn bin(e: BinError) -> ServeError {
    protocol_err(e)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_key(out: &mut Vec<u8>, key: &ModelKey) {
    put_u64(out, key.schema_fingerprint);
    put_string(out, &key.name);
    put_u64(out, key.version);
}

fn decode_key(r: &mut BinReader<'_>) -> Result<ModelKey, ServeError> {
    Ok(ModelKey {
        schema_fingerprint: r.u64().map_err(bin)?,
        name: r.string().map_err(bin)?,
        version: r.u64().map_err(bin)?,
    })
}

fn encode_selector(out: &mut Vec<u8>, selector: &ModelSelector) {
    match selector {
        ModelSelector::Exact(key) => {
            out.push(SEL_EXACT);
            encode_key(out, key);
        }
        ModelSelector::Latest {
            schema_fingerprint,
            name,
        } => {
            out.push(SEL_LATEST);
            put_u64(out, *schema_fingerprint);
            match name {
                Some(name) => {
                    out.push(1);
                    put_string(out, name);
                }
                None => out.push(0),
            }
        }
    }
}

fn decode_selector(r: &mut BinReader<'_>) -> Result<ModelSelector, ServeError> {
    match r.u8().map_err(bin)? {
        SEL_EXACT => Ok(ModelSelector::Exact(decode_key(r)?)),
        SEL_LATEST => {
            let schema_fingerprint = r.u64().map_err(bin)?;
            let name = match r.u8().map_err(bin)? {
                0 => None,
                1 => Some(r.string().map_err(bin)?),
                other => return Err(protocol_err(format!("bad name-presence byte {other}"))),
            };
            Ok(ModelSelector::Latest {
                schema_fingerprint,
                name,
            })
        }
        other => Err(protocol_err(format!("unknown selector tag {other}"))),
    }
}

fn encode_query(out: &mut Vec<u8>, query: &Query) {
    put_u32(out, query.tables.len() as u32);
    for t in &query.tables {
        put_string(out, t);
    }
    put_u32(out, query.filters.len() as u32);
    for f in &query.filters {
        put_string(out, &f.table);
        put_string(out, &f.column);
        out.push(op_tag(&f.predicate.op));
        put_u32(out, f.predicate.literals.len() as u32);
        for v in &f.predicate.literals {
            v.write_binary(out);
        }
    }
}

fn decode_query(r: &mut BinReader<'_>) -> Result<Query, ServeError> {
    let num_tables = r.u32().map_err(bin)? as usize;
    let mut tables = Vec::with_capacity(num_tables.min(1 << 16));
    for _ in 0..num_tables {
        tables.push(r.string().map_err(bin)?);
    }
    let num_filters = r.u32().map_err(bin)? as usize;
    let mut filters = Vec::with_capacity(num_filters.min(1 << 16));
    for _ in 0..num_filters {
        let table = r.string().map_err(bin)?;
        let column = r.string().map_err(bin)?;
        let op = op_from_tag(r.u8().map_err(bin)?)?;
        let num_literals = r.u32().map_err(bin)? as usize;
        let mut literals = Vec::with_capacity(num_literals.min(1 << 16));
        for _ in 0..num_literals {
            literals.push(Value::read_binary(r).map_err(bin)?);
        }
        // Predicate::new asserts its invariants (literal arity); re-validate here so a
        // hostile stream cannot reach the panic.
        match op {
            CompareOp::In if literals.is_empty() => {
                return Err(protocol_err("IN predicate with no literals"));
            }
            CompareOp::In => {}
            _ if literals.len() != 1 => {
                return Err(protocol_err(format!(
                    "binary predicate with {} literals",
                    literals.len()
                )));
            }
            _ => {}
        }
        filters.push(TableFilter {
            table,
            column,
            predicate: Predicate { op, literals },
        });
    }
    Ok(Query { tables, filters })
}

fn error_code(e: &ServeError) -> (u8, Vec<u8>) {
    let mut fields = Vec::new();
    let code = match e {
        ServeError::Estimate(EstimateError::InvalidQuery(msg)) => {
            put_string(&mut fields, msg);
            0
        }
        ServeError::Estimate(EstimateError::UnknownColumn { table, column }) => {
            put_string(&mut fields, table);
            put_string(&mut fields, column);
            1
        }
        ServeError::Estimate(EstimateError::InvalidSampleCount) => 2,
        ServeError::UnknownModel(selector) => {
            put_string(&mut fields, selector);
            3
        }
        ServeError::StaleVersion { requested, current } => {
            encode_key(&mut fields, requested);
            encode_key(&mut fields, current);
            4
        }
        ServeError::AlreadyRegistered(key) => {
            encode_key(&mut fields, key);
            5
        }
        ServeError::ShuttingDown => 6,
        ServeError::Transport(msg) => {
            put_string(&mut fields, msg);
            7
        }
        ServeError::Protocol(msg) => {
            put_string(&mut fields, msg);
            8
        }
        ServeError::Overloaded => 9,
        ServeError::Internal(msg) => {
            put_string(&mut fields, msg);
            10
        }
    };
    (code, fields)
}

fn decode_error(r: &mut BinReader<'_>) -> Result<ServeError, ServeError> {
    Ok(match r.u8().map_err(bin)? {
        0 => ServeError::Estimate(EstimateError::InvalidQuery(r.string().map_err(bin)?)),
        1 => ServeError::Estimate(EstimateError::UnknownColumn {
            table: r.string().map_err(bin)?,
            column: r.string().map_err(bin)?,
        }),
        2 => ServeError::Estimate(EstimateError::InvalidSampleCount),
        3 => ServeError::UnknownModel(r.string().map_err(bin)?),
        4 => ServeError::StaleVersion {
            requested: decode_key(r)?,
            current: decode_key(r)?,
        },
        5 => ServeError::AlreadyRegistered(decode_key(r)?),
        6 => ServeError::ShuttingDown,
        7 => ServeError::Transport(r.string().map_err(bin)?),
        8 => ServeError::Protocol(r.string().map_err(bin)?),
        9 => ServeError::Overloaded,
        10 => ServeError::Internal(r.string().map_err(bin)?),
        other => return Err(protocol_err(format!("unknown error code {other}"))),
    })
}

/// Encodes a request payload (unframed).
pub fn encode_request(request: &ServeRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.push(MSG_REQUEST);
    encode_selector(&mut out, &request.selector);
    encode_query(&mut out, &request.query);
    match request.samples {
        Some(n) => {
            out.push(1);
            put_u64(&mut out, n as u64);
        }
        None => out.push(0),
    }
    out
}

/// Decodes a request payload produced by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> Result<ServeRequest, ServeError> {
    let mut r = BinReader::new(payload);
    if r.u8().map_err(bin)? != MSG_REQUEST {
        return Err(protocol_err("payload is not a request"));
    }
    let selector = decode_selector(&mut r)?;
    let query = decode_query(&mut r)?;
    let samples = match r.u8().map_err(bin)? {
        0 => None,
        1 => {
            let n = r.u64().map_err(bin)?;
            Some(usize::try_from(n).map_err(|_| protocol_err("sample budget overflows usize"))?)
        }
        other => return Err(protocol_err(format!("bad samples-presence byte {other}"))),
    };
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after request",
            r.remaining()
        )));
    }
    Ok(ServeRequest {
        selector,
        query,
        samples,
    })
}

/// Encodes a reply-or-error payload (unframed).
pub fn encode_result(result: &Result<ServeReply, ServeError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match result {
        Ok(reply) => {
            out.push(MSG_REPLY);
            encode_key(&mut out, &reply.key);
            put_u64(&mut out, reply.estimate.to_bits());
        }
        Err(e) => {
            out.push(MSG_ERROR);
            let (code, fields) = error_code(e);
            out.push(code);
            out.extend_from_slice(&fields);
        }
    }
    out
}

/// Decodes a payload produced by [`encode_result`].
///
/// The outer `Err` is a local decode failure; a successfully decoded *remote* error
/// comes back as `Ok(Err(...))`.
#[allow(clippy::type_complexity)]
pub fn decode_result(payload: &[u8]) -> Result<Result<ServeReply, ServeError>, ServeError> {
    let mut r = BinReader::new(payload);
    let result = match r.u8().map_err(bin)? {
        MSG_REPLY => {
            let key = decode_key(&mut r)?;
            let estimate = f64::from_bits(r.u64().map_err(bin)?);
            Ok(ServeReply { key, estimate })
        }
        MSG_ERROR => Err(decode_error(&mut r)?),
        other => return Err(protocol_err(format!("unknown message tag {other}"))),
    };
    if !r.is_empty() {
        return Err(protocol_err(format!(
            "{} trailing bytes after response",
            r.remaining()
        )));
    }
    Ok(result)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(protocol_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
            payload.len()
        )));
    }
    let transport = |e: std::io::Error| ServeError::Transport(e.to_string());
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(transport)?;
    w.write_all(payload).map_err(transport)?;
    w.flush().map_err(transport)
}

/// Reads one length-prefixed frame, rejecting oversized length prefixes before
/// allocating.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let transport = |e: std::io::Error| ServeError::Transport(e.to_string());
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(transport)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(protocol_err(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(transport)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::Predicate;

    fn sample_request() -> ServeRequest {
        ServeRequest::new(
            ModelSelector::Exact(ModelKey::new(0xfeed, "neurocard", 3)),
            Query::join(&["A", "B"])
                .filter("A", "c", Predicate::eq(7i64))
                .filter(
                    "B",
                    "tag",
                    Predicate::isin(vec![Value::from("x"), Value::Null]),
                )
                .filter("A", "d", Predicate::le("zz")),
        )
        .with_samples(64)
    }

    #[test]
    fn request_round_trips() {
        let requests = [
            sample_request(),
            ServeRequest::new(ModelSelector::latest(1, "m"), Query::join(&["t"])),
            ServeRequest::new(
                ModelSelector::latest_for_schema(u64::MAX),
                Query::join(&["t"]),
            ),
        ];
        for request in &requests {
            let bytes = encode_request(request);
            assert_eq!(&decode_request(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn results_round_trip_bit_exactly() {
        let reply = ServeReply {
            key: ModelKey::new(42, "m", 9),
            estimate: 1234.567_891_011e-3,
        };
        let back = decode_result(&encode_result(&Ok(reply.clone())))
            .unwrap()
            .unwrap();
        assert_eq!(back.key, reply.key);
        assert_eq!(back.estimate.to_bits(), reply.estimate.to_bits());

        let errors = [
            ServeError::Estimate(EstimateError::InvalidQuery("boom".into())),
            ServeError::Estimate(EstimateError::UnknownColumn {
                table: "t".into(),
                column: "c".into(),
            }),
            ServeError::Estimate(EstimateError::InvalidSampleCount),
            ServeError::UnknownModel("0000000000000001/m@latest".into()),
            ServeError::StaleVersion {
                requested: ModelKey::new(1, "m", 1),
                current: ModelKey::new(1, "m", 2),
            },
            ServeError::AlreadyRegistered(ModelKey::new(1, "m", 1)),
            ServeError::ShuttingDown,
            ServeError::Overloaded,
            ServeError::Internal("estimator panicked: boom".into()),
            ServeError::Transport("connection reset".into()),
            ServeError::Protocol("bad tag".into()),
        ];
        for e in errors {
            let back = decode_result(&encode_result(&Err(e.clone()))).unwrap();
            assert_eq!(back, Err(e));
        }
    }

    #[test]
    fn corrupt_payloads_error_cleanly() {
        let bytes = encode_request(&sample_request());
        // Truncation at every length errors (never panics).
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err());
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
        // Wrong message tag.
        let mut wrong = bytes.clone();
        wrong[0] = 0x7F;
        assert!(matches!(
            decode_request(&wrong),
            Err(ServeError::Protocol(_))
        ));
        // A request is not a result and vice versa.
        assert!(decode_result(&bytes).is_err());
        // Hostile IN-arity payloads cannot reach Predicate::new's assert.
        let evil = {
            let mut out = Vec::new();
            out.push(MSG_REQUEST);
            encode_selector(&mut out, &ModelSelector::latest(0, "m"));
            put_u32(&mut out, 1);
            put_string(&mut out, "t");
            put_u32(&mut out, 1); // one filter
            put_string(&mut out, "t");
            put_string(&mut out, "c");
            out.push(0); // Eq
            put_u32(&mut out, 2); // ...with two literals
            Value::Int(1).write_binary(&mut out);
            Value::Int(2).write_binary(&mut out);
            out.push(0);
            out
        };
        assert!(matches!(
            decode_request(&evil),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = encode_request(&sample_request());
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"second");
        // EOF → transport error.
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Transport(_))
        ));
        // A hostile length prefix is rejected before allocation.
        let mut evil = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut evil),
            Err(ServeError::Protocol(_))
        ));
    }
}
