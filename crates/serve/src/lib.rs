//! # nc-serve
//!
//! The multi-model serving layer: a versioned [`ModelRegistry`] with atomic hot swap, a
//! transport-independent request protocol, and two transports over it — the in-process
//! [`RegistryService`] worker pool and the [`TcpServer`] wire front-end.  This is the
//! "many schemas, continuous retraining" deployment shape (compare Scardina's
//! multi-estimator routing and ByteCard's serving-lifecycle focus in PAPERS.md).
//!
//! Architecture:
//!
//! * **Registry** ([`registry`]): models register under a typed [`ModelKey`] — schema
//!   fingerprint (computed by [`neurocard::schema_fingerprint`] and stamped into every
//!   artifact manifest) + name + monotonic version.  Requests carry a [`ModelSelector`]
//!   (exact key, or "latest for this schema") and are routed per request, so a running
//!   service follows swaps without restarting.
//! * **Hot swap**: [`ModelRegistry::swap`] atomically publishes a new version; requests
//!   already in flight drain the superseded version, which is retired only when its
//!   lease count reaches zero (epoch/refcount drain — no request is ever dropped or
//!   served by a half-installed model).
//! * **One estimator interface** ([`model`]): anything implementing the object-safe
//!   [`ServingEstimator`] trait can be registered — an artifact-loaded
//!   [`neurocard::EstimatorCore`] keeps its zero-allocation [`ScratchPool`] fast path,
//!   and every [`nc_baselines::CardinalityEstimator`] rides along via [`BaselineModel`].
//! * **One protocol** ([`protocol`]): [`ServeRequest`] / [`ServeReply`] are the only
//!   request/response types; the in-process API, the wire API and the benches all speak
//!   them.  The wire form is a length-prefixed binary codec over the checked
//!   [`nc_storage::binio`] primitives, with estimates crossing as raw `f64` bits.
//! * **Determinism:** every request's RNG stream is derived purely from
//!   `(config.seed, query)` ([`neurocard::EstimatorCore::query_seed`]), so
//!   registry-routed estimates — in process or over TCP — are **bit-identical** to
//!   sequential [`neurocard::EstimatorCore::estimate`] calls regardless of worker
//!   count, transport, queueing order or concurrent swaps.  Pinned by this crate's
//!   tests, the `registry_swap` / `wire_protocol` integration tests, and asserted on
//!   every `registry_bench` run.

pub mod fallback;
pub mod fault;
pub mod journal;
pub mod lockcheck;
pub mod model;
pub mod pool;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod service;
pub mod stats;
pub mod tcp;

pub use fallback::StatsFallback;
pub use fault::{FaultCount, FaultInjector, FaultPlan, FaultPoint};
pub use journal::{JournalError, JournalEvent, RegistryJournal, SharedJournal};
pub use model::{BaselineModel, ServingEstimator};
pub use pool::ScratchPool;
pub use protocol::{
    decode_request, decode_result, decode_stats_result, encode_request, encode_result,
    encode_stats_request, read_frame, write_frame, ServeReply, ServeRequest, MAX_FRAME_LEN,
};
pub use reactor::{ReactorConfig, ReactorStats};
pub use registry::{
    ModelKey, ModelLease, ModelRegistry, ModelSelector, ModelStats, RegistryStats, SwapReceipt,
};
pub use service::{
    EstimatorService, RegistryHandle, RegistryService, ServiceConfig, ServiceHandle, ServiceStats,
};
pub use stats::{nearest_rank, Quantiles, LATENCY_WINDOW};
pub use tcp::{ClientConfig, ServeClient, TcpServer};

use neurocard::EstimateError;

/// Why a serving request failed — shared by every transport (the variants carrying
/// remote context round-trip losslessly through the wire codec).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The estimator rejected the request (invalid query, unknown column, zero sample
    /// budget, ...).
    Estimate(EstimateError),
    /// No model is registered for the selector (rendered form attached).
    UnknownModel(String),
    /// An exact-version request named a version that is no longer (or not yet) current.
    StaleVersion {
        /// The version the request pinned.
        requested: ModelKey,
        /// The version currently published under that name.
        current: ModelKey,
    },
    /// `register` found the name taken (the existing current version is attached);
    /// updating an existing model is a [`ModelRegistry::swap`].
    AlreadyRegistered(ModelKey),
    /// The service is shutting down (workers gone before the reply was produced).
    ShuttingDown,
    /// Admission control: the request queue is full.  The request was **not** queued —
    /// the client should back off and retry; the connection stays healthy.
    Overloaded,
    /// The estimator panicked while serving (caught; the worker and the connection
    /// survive, the panic message is attached).
    Internal(String),
    /// The transport failed (connection closed, read/write error).
    Transport(String),
    /// A wire payload failed to decode (corrupt, truncated, or hostile).
    Protocol(String),
    /// The request did not complete within its deadline (socket timeout or the
    /// client-side per-request deadline expiring).
    Timeout,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Estimate(e) => write!(f, "{e}"),
            ServeError::UnknownModel(selector) => {
                write!(f, "no model registered for {selector}")
            }
            ServeError::StaleVersion { requested, current } => write!(
                f,
                "model version {requested} was superseded (current is {current})"
            ),
            ServeError::AlreadyRegistered(key) => {
                write!(f, "model {key} is already registered (use swap to update)")
            }
            ServeError::ShuttingDown => write!(f, "estimator service is shutting down"),
            ServeError::Overloaded => {
                write!(f, "server overloaded: request queue is full, retry later")
            }
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
            ServeError::Transport(msg) => write!(f, "transport error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Timeout => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_messages() {
        let key = ModelKey::new(1, "m", 1);
        for e in [
            ServeError::Estimate(EstimateError::InvalidSampleCount),
            ServeError::UnknownModel("x".into()),
            ServeError::StaleVersion {
                requested: key.clone(),
                current: ModelKey::new(1, "m", 2),
            },
            ServeError::AlreadyRegistered(key),
            ServeError::ShuttingDown,
            ServeError::Overloaded,
            ServeError::Internal("panic".into()),
            ServeError::Transport("t".into()),
            ServeError::Protocol("p".into()),
            ServeError::Timeout,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
