//! In-process serving: a worker pool that drains [`ServeRequest`]s through a
//! [`ModelRegistry`].
//!
//! [`RegistryService`] is the multi-model successor of PR 4's single-model service: a
//! **bounded** request channel (clients block when the queue is full — natural
//! backpressure), N workers each checking a reusable [`SamplerScratch`] out of a
//! pre-grown [`ScratchPool`] per request, and p50/p99 latency accounting.  Requests
//! carry a [`crate::ModelSelector`], so one service serves every registered model — and
//! keeps serving across hot swaps, since routing happens per request.
//!
//! [`EstimatorService`] remains as the one-model convenience wrapper: it builds a
//! private registry around a single [`EstimatorCore`] and pins every request to it.
//! Determinism is unchanged from PR 4: every estimate is **bit-identical** to a
//! sequential [`EstimatorCore::estimate`] of the same query, regardless of worker
//! count, queueing order or thread interleaving.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nc_schema::Query;
use neurocard::infer::SamplerScratch;
use neurocard::{ArtifactLoadError, EstimatorCore, ModelArtifact};

use crate::lockcheck::Mutex;
use crate::pool::ScratchPool;
use crate::protocol::{ServeReply, ServeRequest};
use crate::registry::{ModelKey, ModelRegistry, ModelSelector, ModelStats};
use crate::stats::{LatencyLog, Quantiles};
use crate::ServeError;

pub use crate::stats::LATENCY_WINDOW;

/// Configuration of a [`RegistryService`] / [`EstimatorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads serving requests.
    pub workers: usize,
    /// Capacity of the bounded request queue (clients block when it is full).
    pub queue_depth: usize,
    /// Sample budget applied when a request carries none; `None` defers to the selected
    /// model's own default.
    pub default_samples: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_depth: 64,
            default_samples: None,
        }
    }
}

impl ServiceConfig {
    /// A config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            ..Default::default()
        }
    }
}

/// Latency summary of a service (microseconds, nearest-rank quantiles over the most
/// recent [`LATENCY_WINDOW`] requests; `served` counts everything).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests completed.
    pub served: usize,
    /// Median request latency (enqueue → reply ready).
    pub p50_us: f64,
    /// 99th-percentile request latency.
    pub p99_us: f64,
    /// Worst request latency.
    pub max_us: f64,
    /// Mean request latency.
    pub mean_us: f64,
}

impl ServiceStats {
    fn from_log(served: u64, us: Vec<f64>) -> Self {
        let q = Quantiles::of(us);
        ServiceStats {
            served: served as usize,
            p50_us: q.p50,
            p99_us: q.p99,
            max_us: q.max,
            mean_us: q.mean,
        }
    }
}

struct WorkItem {
    request: ServeRequest,
    enqueued: Instant,
    /// Rendezvous for exactly one reply.  `sync_channel(1)` rather than an unbounded
    /// channel: the worker's send never blocks (capacity one, one message ever), and
    /// the reply path carries no unbounded queue the lint would have to trust.
    reply: SyncSender<Result<ServeReply, ServeError>>,
}

/// A cloneable client handle onto a running [`RegistryService`].
#[derive(Clone)]
pub struct RegistryHandle {
    tx: SyncSender<WorkItem>,
    depth: Arc<AtomicUsize>,
    registry: Arc<ModelRegistry>,
}

impl RegistryHandle {
    /// Submits a request and blocks for the reply (waiting for queue space if the
    /// request channel is full — in-process callers get blocking backpressure).
    pub fn request(&self, request: ServeRequest) -> Result<ServeReply, ServeError> {
        let (reply, rx) = sync_channel(1);
        self.tx
            .send(WorkItem {
                request,
                enqueued: Instant::now(),
                reply,
            })
            .map_err(|_| ServeError::ShuttingDown)?;
        self.depth.fetch_add(1, Ordering::Relaxed);
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Submits a request **without blocking for queue space**: a full queue is an
    /// immediate [`ServeError::Overloaded`] (the request was not queued) — the
    /// admission-control path transports use so a burst sheds load instead of pinning
    /// client connections.  Still blocks for the reply once admitted.
    ///
    /// When the registry carries a fallback estimator
    /// ([`ModelRegistry::set_fallback`]), a shed request is answered from it inline
    /// instead — a cheap statistics lookup on the caller's thread, flagged
    /// `degraded` — so overload degrades accuracy before it degrades availability.
    pub fn try_request(&self, request: ServeRequest) -> Result<ServeReply, ServeError> {
        let (reply, rx) = sync_channel(1);
        match self.tx.try_send(WorkItem {
            request,
            enqueued: Instant::now(),
            reply,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(item)) => {
                let mut scratch = SamplerScratch::new();
                return match self.registry.serve_fallback(&item.request, &mut scratch) {
                    Some(result) => result,
                    None => Err(ServeError::Overloaded),
                };
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Requests currently queued (admitted, not yet picked up by a worker).  A probe —
    /// racy by nature, exact enough for load shedding and dashboards.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Estimates `query` on the model `selector` resolves to, with its default budget.
    pub fn estimate(
        &self,
        selector: &ModelSelector,
        query: &Query,
    ) -> Result<ServeReply, ServeError> {
        self.request(ServeRequest::new(selector.clone(), query.clone()))
    }
}

/// A long-lived, concurrent serving front over a [`ModelRegistry`].
pub struct RegistryService {
    registry: Arc<ModelRegistry>,
    tx: Option<SyncSender<WorkItem>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    latencies: Arc<Mutex<LatencyLog>>,
    scratch_pool: Arc<ScratchPool>,
    depth: Arc<AtomicUsize>,
    /// Tells workers to exit at their next idle check even while cloned
    /// [`RegistryHandle`]s keep the request channel open — shutdown must be bounded,
    /// not hostage to a leaked handle.
    stop: Arc<AtomicBool>,
}

impl RegistryService {
    /// Starts a service over a registry (which may gain, lose and swap models while the
    /// service runs — routing is per request).
    pub fn new(registry: Arc<ModelRegistry>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let default_samples = config.default_samples;
        let (tx, rx) = sync_channel::<WorkItem>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new("service.worker_rx", rx));
        let latencies = Arc::new(Mutex::new(
            "service.latencies",
            LatencyLog::new(LATENCY_WINDOW),
        ));
        let scratch_pool = Arc::new(ScratchPool::new(workers));
        let stop = Arc::new(AtomicBool::new(false));
        let depth = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let registry = registry.clone();
                let rx = rx.clone();
                let latencies = latencies.clone();
                let pool = scratch_pool.clone();
                let stop = stop.clone();
                let depth = depth.clone();
                std::thread::Builder::new()
                    .name(format!("nc-serve-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &registry,
                            default_samples,
                            &rx,
                            &latencies,
                            &pool,
                            &stop,
                            &depth,
                        )
                    })
                    // nc-lint: allow(panic-in-serving) — startup path, before any
                    // request is admitted; a process that cannot spawn OS threads
                    // cannot serve, and there is no client to hand an error to.
                    .expect("spawning a service worker")
            })
            .collect();
        RegistryService {
            registry,
            tx: Some(tx),
            workers: handles,
            latencies,
            scratch_pool,
            depth,
            stop,
        }
    }

    /// A cloneable client handle (one per client thread).
    pub fn handle(&self) -> RegistryHandle {
        RegistryHandle {
            // nc-lint: allow(panic-in-serving) — `tx` is Some for the service's whole
            // life: only `shutdown()` clears it, and it consumes `self`, so no caller
            // can still reach this method afterwards.
            tx: self.tx.clone().expect("service is running"),
            depth: self.depth.clone(),
            registry: self.registry.clone(),
        }
    }

    /// Requests currently queued (admitted, not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Per-model latency/throughput split (see [`ModelRegistry::model_stats`]).
    pub fn model_stats(&self) -> Vec<ModelStats> {
        self.registry.model_stats()
    }

    /// The routed registry (register/swap while serving through it).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The scratch workspace pool (exposed for observability in benches/tests).
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.scratch_pool
    }

    /// Latency summary: exact served count, quantiles over the most recent
    /// [`LATENCY_WINDOW`] requests.
    pub fn stats(&self) -> ServiceStats {
        let log = self.latencies.lock();
        ServiceStats::from_log(log.total(), log.window_samples())
    }

    /// Stops accepting requests, drains the queue, joins the workers and returns the
    /// final stats.
    ///
    /// Workers exit once the queue is empty — even if a leaked [`RegistryHandle`] still
    /// keeps the channel open, shutdown completes within one idle-poll interval rather
    /// than deadlocking (requests sent through such a handle afterwards fail with
    /// [`ServeError::ShuttingDown`]).
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop.store(true, Ordering::Release);
        self.tx = None; // close our side of the channel; workers drain, then exit
        for w in self.workers.drain(..) {
            // nc-lint: allow(panic-in-serving) — shutdown path, after the last reply:
            // a worker that panicked despite the catch_unwind in its loop is a bug
            // that must surface, not be swallowed into the final stats.
            w.join().expect("service worker panicked");
        }
        self.stats()
    }
}

impl Drop for RegistryService {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.tx = None;
        for w in self.workers.drain(..) {
            // A panic in a worker already unwound; don't double-panic in drop.
            let _ = w.join();
        }
    }
}

/// How often an idle worker wakes to check the stop flag.  Only reached when the queue
/// is empty, so it costs nothing on the serving hot path; it bounds shutdown latency
/// when a leaked handle keeps the channel open.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Renders a caught panic payload for a [`ServeError::Internal`] reply.
pub(crate) fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "estimator panicked".to_string()
    }
}

fn worker_loop(
    registry: &ModelRegistry,
    default_samples: Option<usize>,
    rx: &Mutex<Receiver<WorkItem>>,
    latencies: &Mutex<LatencyLog>,
    pool: &ScratchPool,
    stop: &AtomicBool,
    depth: &AtomicUsize,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not the compute.  Queued
        // requests are always served before a stop-flag exit (recv_timeout only times
        // out on an empty queue), so shutdown() still drains.
        let item = match rx.lock().recv_timeout(IDLE_POLL) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return, // all senders gone
        };
        depth.fetch_sub(1, Ordering::Relaxed);
        let mut request = item.request;
        if request.samples.is_none() {
            request.samples = default_samples;
        }
        // A panicking model must not take the worker (and with it the whole service)
        // down: catch the unwind, reply with a typed Internal error, and *discard* the
        // scratch that was live during the panic — its state is suspect, and the pool
        // replaces discarded scratches on demand.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut scratch = pool.checkout();
            let result = registry.handle(&request, &mut scratch);
            pool.checkin(scratch);
            result
        }))
        .unwrap_or_else(|panic| Err(ServeError::Internal(panic_message(panic))));
        latencies
            .lock()
            .push(item.enqueued.elapsed().as_secs_f64() * 1e6);
        // A client that gave up (dropped the reply receiver) is not an error.
        let _ = item.reply.send(result);
    }
}

/// A cloneable client handle onto a running [`EstimatorService`] (the single-model
/// facade: every request is pinned to the service's one core).
#[derive(Clone)]
pub struct ServiceHandle {
    inner: RegistryHandle,
    selector: ModelSelector,
    default_samples: usize,
}

impl ServiceHandle {
    /// Estimates with the service's default sample budget (blocking round trip).
    pub fn estimate(&self, query: &Query) -> Result<f64, ServeError> {
        self.estimate_with_samples(query, self.default_samples)
    }

    /// Estimates with an explicit sample budget (blocking round trip).
    pub fn estimate_with_samples(&self, query: &Query, samples: usize) -> Result<f64, ServeError> {
        self.inner
            .request(ServeRequest::new(self.selector.clone(), query.clone()).with_samples(samples))
            .map(|reply| reply.estimate)
    }
}

/// A long-lived, concurrent estimator service over one loaded model.
///
/// Since the registry redesign this is a facade: a private [`ModelRegistry`] holding
/// exactly one [`EstimatorCore`], served by a [`RegistryService`].  The public API (and
/// its determinism contract) is unchanged from PR 4.
pub struct EstimatorService {
    service: RegistryService,
    core: Arc<EstimatorCore>,
    key: ModelKey,
    default_samples: usize,
}

impl EstimatorService {
    /// Starts a service over an estimation core.
    pub fn new(core: Arc<EstimatorCore>, config: ServiceConfig) -> Self {
        let default_samples = config
            .default_samples
            .unwrap_or(core.config().progressive_samples);
        let registry = Arc::new(ModelRegistry::new());
        let key = registry
            .register_core("default", core.clone())
            // nc-lint: allow(panic-in-serving) — startup path on a registry created
            // two lines up and not yet shared; "default" cannot already be taken.
            .expect("fresh registry has no entries");
        let service = RegistryService::new(registry, config);
        EstimatorService {
            service,
            core,
            key,
            default_samples,
        }
    }

    /// Starts a service straight from a parsed [`ModelArtifact`].
    pub fn from_artifact(
        artifact: &ModelArtifact,
        config: ServiceConfig,
    ) -> Result<Self, ArtifactLoadError> {
        Ok(Self::new(Arc::new(artifact.to_core()?), config))
    }

    /// Starts a service straight from artifact container bytes.
    pub fn from_artifact_bytes(
        bytes: &[u8],
        config: ServiceConfig,
    ) -> Result<Self, ArtifactLoadError> {
        Self::from_artifact(&ModelArtifact::from_bytes(bytes)?, config)
    }

    /// A cloneable client handle (one per client thread).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: self.service.handle(),
            selector: ModelSelector::Exact(self.key.clone()),
            default_samples: self.default_samples,
        }
    }

    /// Estimates through the service (blocking round trip; equivalent to
    /// `self.handle().estimate(query)`).
    pub fn estimate(&self, query: &Query) -> Result<f64, ServeError> {
        self.handle().estimate(query)
    }

    /// Estimates with an explicit sample budget.
    pub fn estimate_with_samples(&self, query: &Query, samples: usize) -> Result<f64, ServeError> {
        self.handle().estimate_with_samples(query, samples)
    }

    /// The shared estimation core.
    pub fn core(&self) -> &Arc<EstimatorCore> {
        &self.core
    }

    /// The key the core is registered under in the service's private registry.
    pub fn key(&self) -> &ModelKey {
        &self.key
    }

    /// The scratch workspace pool (exposed for observability in benches/tests).
    pub fn scratch_pool(&self) -> &ScratchPool {
        self.service.scratch_pool()
    }

    /// Latency summary: exact served count, quantiles over the most recent
    /// [`LATENCY_WINDOW`] requests.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Stops accepting requests, drains the queue, joins the workers and returns the
    /// final stats (see [`RegistryService::shutdown`]).
    pub fn shutdown(self) -> ServiceStats {
        self.service.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, JoinSchema, Predicate};
    use nc_storage::{Database, TableBuilder, Value};
    use neurocard::{EstimateError, NeuroCard, NeuroCardConfig};

    fn trained_core() -> Arc<EstimatorCore> {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "c"]);
        for i in 0..50i64 {
            a.push_row(vec![Value::Int(i % 6), Value::Int(i % 4)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "d"]);
        for i in 0..70i64 {
            b.push_row(vec![Value::Int(i % 6), Value::Int(i % 3)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        let config = NeuroCardConfig::tiny().with_training_tuples(600);
        let artifact = NeuroCard::train(Arc::new(db), Arc::new(schema), &config);
        // Serve through the full persistence path, as production would.
        Arc::new(
            ModelArtifact::from_bytes(&artifact.to_bytes())
                .unwrap()
                .to_core()
                .unwrap(),
        )
    }

    fn workload() -> Vec<Query> {
        let mut queries = vec![Query::join(&["A", "B"]), Query::join(&["A"])];
        for v in 0..4i64 {
            queries.push(Query::join(&["A", "B"]).filter("A", "c", Predicate::eq(v)));
            queries.push(Query::join(&["B"]).filter("B", "d", Predicate::le(v)));
        }
        queries
    }

    #[test]
    fn concurrent_service_matches_sequential_estimates_at_any_worker_count() {
        let core = trained_core();
        let queries = workload();
        let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

        for workers in [1usize, 2, 4] {
            let service = EstimatorService::new(
                core.clone(),
                ServiceConfig {
                    workers,
                    queue_depth: 2,
                    default_samples: None,
                },
            );
            // 3 client threads hammer the service with interleaved repetitions.
            let results: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..3)
                    .map(|client| {
                        let handle = service.handle();
                        let queries = &queries;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for round in 0..3 {
                                for (i, q) in queries.iter().enumerate() {
                                    if (i + round + client) % 3 == client % 3 {
                                        out.push((i, handle.estimate(q).unwrap()));
                                    }
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for client_results in &results {
                for (i, est) in client_results {
                    assert_eq!(
                        est.to_bits(),
                        sequential[*i].to_bits(),
                        "service with {workers} workers diverged on query {i}"
                    );
                }
            }
            let stats = service.shutdown();
            let expected = results.iter().map(|r| r.len()).sum::<usize>();
            assert_eq!(stats.served, expected);
            assert!(stats.p50_us <= stats.p99_us && stats.p99_us <= stats.max_us);
            assert!(stats.p50_us > 0.0);
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let core = trained_core();
        let service = EstimatorService::new(core, ServiceConfig::with_workers(2));
        let q = Query::join(&["A"]);
        // Zero sample budget → typed error (the PR-4 satellite contract).
        assert_eq!(
            service.estimate_with_samples(&q, 0),
            Err(ServeError::Estimate(EstimateError::InvalidSampleCount))
        );
        // Unknown column → typed error; the worker survives to serve the next request.
        let bad = Query::join(&["A", "B"]).filter("A", "x", Predicate::eq(0i64));
        assert!(matches!(
            service.estimate(&bad),
            Err(ServeError::Estimate(EstimateError::UnknownColumn { .. }))
        ));
        assert!(service.estimate(&q).is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.served, 3);
    }

    #[test]
    fn service_under_load_never_grows_the_scratch_pool() {
        let core = trained_core();
        let service = EstimatorService::new(
            core,
            ServiceConfig {
                workers: 2,
                queue_depth: 1,
                default_samples: Some(16),
            },
        );
        let queries = workload();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = service.handle();
                let queries = &queries;
                scope.spawn(move || {
                    for q in queries {
                        handle.estimate(q).unwrap();
                    }
                });
            }
        });
        // One scratch per worker, checked out and in per request — no emergency growth.
        assert_eq!(service.scratch_pool().total_created(), 2);
        let stats = service.shutdown();
        assert_eq!(stats.served, 4 * queries.len());
    }

    #[test]
    fn drop_with_leaked_handle_does_not_deadlock() {
        let core = trained_core();
        let service = EstimatorService::new(core, ServiceConfig::with_workers(2));
        let handle = service.handle();
        let q = Query::join(&["A"]);
        assert!(service.estimate(&q).is_ok());
        // The leaked handle keeps the request channel open; drop must still return
        // (workers exit via the stop flag at their next idle poll).
        drop(service);
        // ...and the orphaned handle fails cleanly instead of blocking.
        assert_eq!(handle.estimate(&q), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn registry_service_routes_and_survives_swaps() {
        let core = trained_core();
        let queries = workload();
        let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

        let registry = Arc::new(ModelRegistry::new());
        let key = registry.register_core("neurocard", core.clone()).unwrap();
        let service = RegistryService::new(registry.clone(), ServiceConfig::with_workers(2));
        let handle = service.handle();

        // Routed estimates are bit-identical to the direct core.
        let selector = ModelSelector::latest(key.schema_fingerprint, "neurocard");
        for (q, want) in queries.iter().zip(&sequential) {
            let reply = handle.estimate(&selector, q).unwrap();
            assert_eq!(reply.key, key);
            assert_eq!(reply.estimate.to_bits(), want.to_bits());
        }

        // Swap in "the same model, next version" mid-flight: routing follows.
        let receipt = registry
            .swap(key.schema_fingerprint, "neurocard", core.clone())
            .unwrap();
        let reply = handle.estimate(&selector, &queries[0]).unwrap();
        assert_eq!(reply.key, receipt.new);
        assert_eq!(reply.estimate.to_bits(), sequential[0].to_bits());

        // Unknown models come back as routed errors, not worker deaths.
        assert!(matches!(
            handle.estimate(
                &ModelSelector::latest(key.schema_fingerprint, "nope"),
                &queries[0]
            ),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(handle.estimate(&selector, &queries[1]).is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.served, queries.len() + 3);
    }

    #[test]
    fn panicking_model_yields_internal_error_and_service_survives() {
        use crate::model::BaselineModel;
        use nc_baselines::CardinalityEstimator;

        struct Bomb;
        impl CardinalityEstimator for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn estimate(&self, _q: &Query) -> f64 {
                panic!("boom")
            }
        }
        struct One;
        impl CardinalityEstimator for One {
            fn name(&self) -> &str {
                "one"
            }
            fn estimate(&self, _q: &Query) -> f64 {
                1.0
            }
        }

        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(1, "bomb", Arc::new(BaselineModel::new(Bomb)))
            .unwrap();
        registry
            .register(1, "one", Arc::new(BaselineModel::new(One)))
            .unwrap();
        // One worker: if the panic killed it, nothing would serve the next request.
        let service = RegistryService::new(registry, ServiceConfig::with_workers(1));
        let handle = service.handle();
        let q = Query::join(&["t"]);
        match handle.estimate(&ModelSelector::latest(1, "bomb"), &q) {
            Err(ServeError::Internal(msg)) => assert!(msg.contains("boom"), "got {msg:?}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        let reply = handle
            .estimate(&ModelSelector::latest(1, "one"), &q)
            .unwrap();
        assert_eq!(reply.estimate, 1.0);
        let stats = service.shutdown();
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn try_request_sheds_load_when_the_queue_is_full() {
        use crate::model::BaselineModel;
        use nc_baselines::CardinalityEstimator;
        use std::sync::atomic::AtomicUsize;
        use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};

        struct Gate {
            state: Arc<(StdMutex<bool>, StdCondvar)>,
            waiters: Arc<AtomicUsize>,
        }
        impl CardinalityEstimator for Gate {
            fn name(&self) -> &str {
                "gate"
            }
            fn estimate(&self, _q: &Query) -> f64 {
                let (lock, cv) = &*self.state;
                let mut open = lock.lock().unwrap_or_else(|p| p.into_inner());
                self.waiters.fetch_add(1, Ordering::SeqCst);
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                7.0
            }
        }

        let state = Arc::new((StdMutex::new(false), StdCondvar::new()));
        let waiters = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(
                1,
                "gate",
                Arc::new(BaselineModel::new(Gate {
                    state: state.clone(),
                    waiters: waiters.clone(),
                })),
            )
            .unwrap();
        let service = RegistryService::new(
            registry,
            ServiceConfig {
                workers: 1,
                queue_depth: 1,
                default_samples: None,
            },
        );
        let handle = service.handle();
        let q = Query::join(&["t"]);
        let sel = ModelSelector::latest(1, "gate");

        // Two blocking clients: one request held inside the (closed) gate by the single
        // worker, the second filling the queue's one slot.
        let blocked: Vec<_> = (0..2)
            .map(|_| {
                let h = handle.clone();
                let sel = sel.clone();
                let q = q.clone();
                std::thread::spawn(move || h.estimate(&sel, &q))
            })
            .collect();
        while waiters.load(Ordering::SeqCst) != 1 || handle.queue_depth() != 1 {
            std::thread::yield_now();
        }

        // The queue is provably full: admission control refuses instead of blocking.
        assert_eq!(
            handle.try_request(ServeRequest::new(sel.clone(), q.clone())),
            Err(ServeError::Overloaded)
        );

        // Open the gate: both admitted requests complete; the shed one never ran.
        *state.0.lock().unwrap_or_else(|p| p.into_inner()) = true;
        state.1.notify_all();
        for t in blocked {
            assert_eq!(t.join().unwrap().unwrap().estimate, 7.0);
        }
        let stats = service.shutdown();
        assert_eq!(stats.served, 2);
        // A post-shutdown try_request reports shutdown, not overload.
        assert!(matches!(
            handle.try_request(ServeRequest::new(sel, q)),
            Err(ServeError::ShuttingDown) | Err(ServeError::Overloaded)
        ));
    }

    #[test]
    fn queue_shed_degrades_through_the_fallback() {
        use crate::fallback::StatsFallback;
        use crate::model::BaselineModel;
        use nc_baselines::CardinalityEstimator;
        use std::sync::atomic::AtomicUsize;
        use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};

        struct Gate {
            state: Arc<(StdMutex<bool>, StdCondvar)>,
            waiters: Arc<AtomicUsize>,
        }
        impl CardinalityEstimator for Gate {
            fn name(&self) -> &str {
                "gate"
            }
            fn estimate(&self, _q: &Query) -> f64 {
                let (lock, cv) = &*self.state;
                let mut open = lock.lock().unwrap_or_else(|p| p.into_inner());
                self.waiters.fetch_add(1, Ordering::SeqCst);
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                7.0
            }
        }

        let state = Arc::new((StdMutex::new(false), StdCondvar::new()));
        let waiters = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register(
                1,
                "gate",
                Arc::new(BaselineModel::new(Gate {
                    state: state.clone(),
                    waiters: waiters.clone(),
                })),
            )
            .unwrap();
        // Install a stats fallback over a tiny one-table database.
        let mut db = Database::new();
        let mut t = TableBuilder::new("t", &["v"]);
        for i in 0..40i64 {
            t.push_row(vec![Value::Int(i % 8)]);
        }
        db.add_table(t.finish());
        let schema = JoinSchema::new(vec!["t".into()], vec![], "t").unwrap();
        registry.set_fallback(Arc::new(StatsFallback::from_database(
            &db,
            Arc::new(schema),
        )));

        let service = RegistryService::new(
            registry.clone(),
            ServiceConfig {
                workers: 1,
                queue_depth: 1,
                default_samples: None,
            },
        );
        let handle = service.handle();
        let q = Query::join(&["t"]);
        let sel = ModelSelector::latest(1, "gate");

        // Fill the worker (gated) and the queue's one slot.
        let blocked: Vec<_> = (0..2)
            .map(|_| {
                let h = handle.clone();
                let sel = sel.clone();
                let q = q.clone();
                std::thread::spawn(move || h.estimate(&sel, &q))
            })
            .collect();
        while waiters.load(Ordering::SeqCst) != 1 || handle.queue_depth() != 1 {
            std::thread::yield_now();
        }

        // The shed request is answered inline by the fallback, flagged degraded.
        let reply = handle
            .try_request(ServeRequest::new(sel.clone(), q.clone()))
            .unwrap();
        assert!(reply.degraded);
        assert_eq!(reply.estimate, 40.0);
        assert_eq!(reply.key.name, "stats-fallback");
        assert_eq!(reply.key.version, 0);
        assert_eq!(registry.stats().degraded, 1);

        *state.0.lock().unwrap_or_else(|p| p.into_inner()) = true;
        state.1.notify_all();
        for t in blocked {
            assert_eq!(t.join().unwrap().unwrap().estimate, 7.0);
        }
        let stats = service.shutdown();
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn stats_on_empty_service_are_zero() {
        let stats = ServiceStats::from_log(0, Vec::new());
        assert_eq!(stats.served, 0);
        assert_eq!(stats.p99_us, 0.0);
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }

    #[test]
    fn latency_log_is_bounded_but_counts_everything() {
        let mut log = LatencyLog::new(LATENCY_WINDOW);
        for i in 0..(LATENCY_WINDOW + 500) {
            log.push(i as f64);
        }
        assert_eq!(log.total(), (LATENCY_WINDOW + 500) as u64);
        let window = log.window_samples();
        assert_eq!(window.len(), LATENCY_WINDOW);
        let stats = ServiceStats::from_log(log.total(), window.clone());
        assert_eq!(stats.served, LATENCY_WINDOW + 500);
        // The window holds the most recent values: the oldest 500 were overwritten.
        assert!(window.iter().all(|&v| v >= 500.0));
    }
}
