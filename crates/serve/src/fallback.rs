//! The graceful-degradation estimator: cheap per-table statistics under the
//! independence assumption.
//!
//! When a selector matches no live model, the registry can answer from a
//! [`StatsFallback`] instead of failing the request — the benchmark-evaluation
//! literature (Han et al., PAPERS.md) finds coarse statistics-based estimates an
//! acceptable stopgap exactly when a learned model is unavailable, and ByteCard's
//! serving rule is that an estimate must never stall the planner.  Replies produced
//! this way are flagged `degraded` on the wire (see
//! [`ServeReply::degraded`](crate::ServeReply)) so the planner can weigh them.
//!
//! The estimate is the textbook System-R shape: unfiltered join size under join
//! uniformity (`Π rows / Π max(ndv_left, ndv_right)` over the joined edges), times
//! one selectivity factor per filter — `1/ndv` for equality, `k/ndv` for `IN`,
//! linear interpolation over the `[min, max]` integer range for range predicates,
//! `1/3` when nothing better is known — all scaled by the column's non-NULL
//! fraction (NULL never matches a predicate).  Everything it needs is captured at
//! build time from the [`Database`]; serving touches no table data.

use std::collections::HashMap;
use std::sync::Arc;

use nc_schema::{CompareOp, JoinSchema, Query};
use nc_storage::{Database, Value};
use neurocard::infer::SamplerScratch;
use neurocard::EstimateError;

use crate::model::ServingEstimator;

/// Selectivity assumed for a range predicate with no usable range statistics
/// (string columns, unbounded ranges) — the classic System-R default.
const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

#[derive(Debug, Clone)]
struct ColumnSummary {
    ndv: f64,
    non_null_fraction: f64,
    /// Present only for columns whose non-NULL values are all integers.
    int_range: Option<(i64, i64)>,
}

#[derive(Debug, Clone)]
struct TableSummary {
    rows: f64,
    columns: HashMap<String, ColumnSummary>,
}

/// Per-table row counts + per-column summaries, served under independence.
pub struct StatsFallback {
    schema: Arc<JoinSchema>,
    tables: HashMap<String, TableSummary>,
}

impl StatsFallback {
    /// Captures the statistics for every schema table present in `db`.
    pub fn from_database(db: &Database, schema: Arc<JoinSchema>) -> Self {
        let mut tables = HashMap::new();
        for name in schema.tables() {
            let Some(table) = db.table(name) else {
                continue;
            };
            let rows = (table.num_rows() as f64).max(1.0);
            let mut columns = HashMap::new();
            for col in table.columns() {
                let nulls = col.null_count() as f64;
                let non_null_fraction = if table.num_rows() == 0 {
                    1.0
                } else {
                    1.0 - nulls / table.num_rows() as f64
                };
                let int_range = match col.min_max() {
                    Some((Value::Int(lo), Value::Int(hi))) => Some((lo, hi)),
                    _ => None,
                };
                columns.insert(
                    col.name().to_string(),
                    ColumnSummary {
                        ndv: (col.distinct_count() as f64).max(1.0),
                        non_null_fraction,
                        int_range,
                    },
                );
            }
            tables.insert(name.clone(), TableSummary { rows, columns });
        }
        StatsFallback { schema, tables }
    }

    fn table(&self, name: &str) -> Result<&TableSummary, EstimateError> {
        self.tables
            .get(name)
            .ok_or_else(|| EstimateError::InvalidQuery(format!("unknown table {name:?}")))
    }

    fn column(&self, table: &str, column: &str) -> Result<&ColumnSummary, EstimateError> {
        self.table(table)?
            .columns
            .get(column)
            .ok_or_else(|| EstimateError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })
    }

    /// Join-key ndv for one edge endpoint (`1` when the table/column was never
    /// captured — degrades towards the plain row-count product).
    fn ndv(&self, table: &str, column: &str) -> f64 {
        self.tables
            .get(table)
            .and_then(|t| t.columns.get(column))
            .map(|c| c.ndv)
            .unwrap_or(1.0)
    }

    /// Fraction of an integer range `[lo, hi]` selected by `op lit`, assuming a
    /// uniform value distribution.
    fn range_fraction(range: (i64, i64), op: &CompareOp, lit: i64) -> f64 {
        let (lo, hi) = (range.0 as f64, range.1 as f64);
        let width = (hi - lo).max(1.0);
        let lit = lit as f64;
        let frac = match op {
            CompareOp::Lt | CompareOp::Le => (lit - lo) / width,
            CompareOp::Gt | CompareOp::Ge => (hi - lit) / width,
            _ => DEFAULT_RANGE_SELECTIVITY,
        };
        frac.clamp(0.0, 1.0)
    }
}

impl ServingEstimator for StatsFallback {
    fn name(&self) -> &str {
        "stats-fallback"
    }

    fn default_samples(&self) -> usize {
        1
    }

    fn serve(
        &self,
        query: &Query,
        _samples: usize,
        _scratch: &mut SamplerScratch,
    ) -> Result<f64, EstimateError> {
        if query.tables.is_empty() {
            return Err(EstimateError::InvalidQuery("query joins no tables".into()));
        }
        // Unfiltered join size under join uniformity (same formula as the
        // Postgres-like and per-table-AR baselines).
        let mut size = 1.0f64;
        for t in &query.tables {
            size *= self.table(t)?.rows;
        }
        for t in &query.tables {
            if let Some(parent) = self.schema.parent(t) {
                if !query.joins(parent) {
                    continue;
                }
                for edge in self.schema.edges_between(parent, t) {
                    let left = self.ndv(&edge.left.table, &edge.left.column);
                    let right = self.ndv(&edge.right.table, &edge.right.column);
                    size /= left.max(right);
                }
            }
        }

        // One independent selectivity factor per filter.
        let mut selectivity = 1.0f64;
        for f in &query.filters {
            let col = self.column(&f.table, &f.column)?;
            let sel = match &f.predicate.op {
                CompareOp::Eq => 1.0 / col.ndv,
                CompareOp::In => (f.predicate.literals.len() as f64 / col.ndv).min(1.0),
                op => match (col.int_range, f.predicate.literals[0].as_int()) {
                    (Some(range), Some(lit)) => Self::range_fraction(range, op, lit),
                    _ => DEFAULT_RANGE_SELECTIVITY,
                },
            };
            selectivity *= sel * col.non_null_fraction;
        }

        Ok((size * selectivity).max(1.0))
    }

    fn size_bytes(&self) -> usize {
        self.tables
            .values()
            .map(|t| std::mem::size_of::<TableSummary>() + t.columns.len() * 64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::TableBuilder;

    fn fixture() -> (Database, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["id", "year", "tag"]);
        for i in 0..100i64 {
            let tag = if i % 10 == 0 {
                Value::Null
            } else {
                Value::from(format!("t{}", i % 4))
            };
            a.push_row(vec![Value::Int(i % 20), Value::Int(1990 + i % 10), tag]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["a_id", "v"]);
        for i in 0..50i64 {
            b.push_row(vec![Value::Int(i % 20), Value::Int(i)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.id", "B.a_id")],
            "A",
        )
        .unwrap();
        (db, Arc::new(schema))
    }

    #[test]
    fn independence_estimates_are_sane_and_floored() {
        let (db, schema) = fixture();
        let fb = StatsFallback::from_database(&db, schema);
        let mut scratch = SamplerScratch::new();
        assert_eq!(fb.name(), "stats-fallback");
        assert_eq!(fb.default_samples(), 1);
        assert!(fb.size_bytes() > 0);

        // Unfiltered single table: the exact row count.
        let est = fb.serve(&Query::join(&["A"]), 1, &mut scratch).unwrap();
        assert_eq!(est, 100.0);

        // Unfiltered join: 100 * 50 / max(ndv 20, ndv 20) = 250.
        let est = fb
            .serve(&Query::join(&["A", "B"]), 1, &mut scratch)
            .unwrap();
        assert_eq!(est, 250.0);

        // Equality on year (ndv 10): 100/10 = 10.
        let q = Query::join(&["A"]).filter("A", "year", Predicate::eq(1995i64));
        assert_eq!(fb.serve(&q, 1, &mut scratch).unwrap(), 10.0);

        // IN over the 4 tags scaled by the 90% non-null fraction.
        let q = Query::join(&["A"]).filter(
            "A",
            "tag",
            Predicate::isin(vec![Value::from("t0"), Value::from("t1")]),
        );
        let est = fb.serve(&q, 1, &mut scratch).unwrap();
        assert!((est - 100.0 * (2.0 / 4.0) * 0.9).abs() < 1e-9, "got {est}");

        // Range on year interpolates within [1990, 1999].
        let q = Query::join(&["A"]).filter("A", "year", Predicate::le(1994i64));
        let est = fb.serve(&q, 1, &mut scratch).unwrap();
        assert!((20.0..60.0).contains(&est), "got {est}");

        // Estimates never go below one row.
        let q = Query::join(&["A"])
            .filter("A", "year", Predicate::eq(1990i64))
            .filter("A", "id", Predicate::eq(0i64))
            .filter("A", "tag", Predicate::eq("t0"));
        assert_eq!(fb.serve(&q, 1, &mut scratch).unwrap(), 1.0);
    }

    #[test]
    fn unknown_tables_and_columns_are_typed_errors() {
        let (db, schema) = fixture();
        let fb = StatsFallback::from_database(&db, schema);
        let mut scratch = SamplerScratch::new();
        assert!(matches!(
            fb.serve(&Query::join(&["nope"]), 1, &mut scratch),
            Err(EstimateError::InvalidQuery(_))
        ));
        let q = Query::join(&["A"]).filter("A", "nope", Predicate::eq(1i64));
        assert!(matches!(
            fb.serve(&q, 1, &mut scratch),
            Err(EstimateError::UnknownColumn { .. })
        ));
        assert!(matches!(
            fb.serve(
                &Query {
                    tables: vec![],
                    filters: vec![]
                },
                1,
                &mut scratch
            ),
            Err(EstimateError::InvalidQuery(_))
        ));
        // Registrable as a trait object.
        let _obj: Arc<dyn ServingEstimator> =
            Arc::new(StatsFallback::from_database(&Database::new(), {
                let (_, schema) = fixture();
                schema
            }));
    }
}
