//! Registry persistence: an append-only journal of publish/deregister events.
//!
//! `neurocard-serve` survives a `kill -9`: every [`ModelRegistry`] mutation it performs
//! is journalled to a JSON-lines manifest **before** it takes effect, and a restarted
//! server folds the journal back into the exact pre-crash registry — same names, same
//! *versions* (via [`ModelRegistry::restore`]), so clients pinning an exact
//! [`ModelKey`] resume without renegotiation.
//!
//! Format: one [`JournalEvent`] per line, serialised by the workspace's offline serde
//! shim.  Fingerprints are 16-digit hex strings (JSON numbers are not trusted with
//! 64-bit identifiers).  Each append is flushed and `fdatasync`ed before the registry
//! mutation happens, so the journal can only ever be *ahead* of the served state, never
//! behind it.  A crash mid-append leaves a torn final line; [`read_events`] tolerates a
//! corrupt **last** line (and only the last) for exactly that reason.
//!
//! [`ModelRegistry`]: crate::ModelRegistry
//! [`ModelRegistry::restore`]: crate::ModelRegistry::restore

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::fault::FaultInjector;
use crate::lockcheck;
use crate::registry::ModelKey;

/// Why a journal operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The underlying file I/O failed (message attached).
    Io(String),
    /// A journal line other than the (possibly torn) final one failed to parse.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Parse error message.
        message: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal I/O error: {msg}"),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

/// One registry mutation, as journalled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// `"publish"` (register or swap — both install a current version),
    /// `"promote"` (a pipeline-validated swap: folds like a publish, but marks
    /// the installed version as having won a shadow comparison), or
    /// `"deregister"`.
    pub op: String,
    /// Schema fingerprint as a 16-digit hex string.
    pub schema_fingerprint: String,
    /// Model name within the schema.
    pub name: String,
    /// Version installed by a publish (`0` for deregister).
    pub version: u64,
    /// Artifact container the model loads from (empty for deregister).
    pub artifact_path: String,
}

impl JournalEvent {
    /// A publish event: `key` became the current version, loadable from
    /// `artifact_path`.
    pub fn publish(key: &ModelKey, artifact_path: impl Into<String>) -> Self {
        JournalEvent {
            op: "publish".into(),
            schema_fingerprint: format!("{:016x}", key.schema_fingerprint),
            name: key.name.clone(),
            version: key.version,
            artifact_path: artifact_path.into(),
        }
    }

    /// A promotion event: `key` became the current version after winning a shadow
    /// comparison.  Folds exactly like [`publish`](Self::publish) — the distinct op
    /// string is the durable record that the swap was pipeline-validated, so an
    /// auditor reading the raw journal can tell validated promotions from manual
    /// publishes.
    pub fn promote(key: &ModelKey, artifact_path: impl Into<String>) -> Self {
        JournalEvent {
            op: "promote".into(),
            schema_fingerprint: format!("{:016x}", key.schema_fingerprint),
            name: key.name.clone(),
            version: key.version,
            artifact_path: artifact_path.into(),
        }
    }

    /// A deregister event: `(schema_fingerprint, name)` left the routing table.
    pub fn deregister(schema_fingerprint: u64, name: impl Into<String>) -> Self {
        JournalEvent {
            op: "deregister".into(),
            schema_fingerprint: format!("{schema_fingerprint:016x}"),
            name: name.into(),
            version: 0,
            artifact_path: String::new(),
        }
    }

    /// The fingerprint parsed back out of its hex form.
    pub fn fingerprint(&self) -> Result<u64, JournalError> {
        u64::from_str_radix(&self.schema_fingerprint, 16).map_err(|e| JournalError::Corrupt {
            line: 0,
            message: format!("bad fingerprint {:?}: {e}", self.schema_fingerprint),
        })
    }

    /// The model key a publish event installs.
    pub fn key(&self) -> Result<ModelKey, JournalError> {
        Ok(ModelKey::new(
            self.fingerprint()?,
            self.name.clone(),
            self.version,
        ))
    }
}

/// Parses journal bytes into events, also returning the byte length of the **valid
/// prefix**: the end (newline included) of the last durable line.  Everything past
/// it is a torn tail.
///
/// Two kinds of tail are torn: a final line that fails to parse, and a final line
/// with no terminating newline — even one that happens to parse.  `append` writes
/// line and newline in one `write_all` and only acknowledges after `fdatasync`, so
/// an unterminated line was necessarily cut mid-write and never acknowledged
/// durable; counting it would let a lost write resurrect, and appending after it
/// would merge two events into one corrupt line.  A bad line anywhere *else* is
/// real corruption and fails with [`JournalError::Corrupt`].
fn parse_events(bytes: &[u8]) -> Result<(Vec<JournalEvent>, usize), JournalError> {
    let mut events = Vec::new();
    let mut valid = 0usize;
    let mut offset = 0usize;
    let mut line_no = 0usize;
    while offset < bytes.len() {
        line_no += 1;
        let (line_end, next, terminated) = match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(i) => (offset + i, offset + i + 1, true),
            None => (bytes.len(), bytes.len(), false),
        };
        let line_bytes = &bytes[offset..line_end];
        let is_final = next >= bytes.len();
        let parsed = std::str::from_utf8(line_bytes)
            .map_err(|e| e.to_string())
            .and_then(|s| {
                if s.trim().is_empty() {
                    Ok(None)
                } else {
                    serde_json::from_str::<JournalEvent>(s)
                        .map(Some)
                        .map_err(|e| e.to_string())
                }
            });
        match parsed {
            Ok(ev) if terminated => {
                events.extend(ev);
                valid = next;
            }
            Ok(_) => break, // parseable but unterminated: a torn (unacknowledged) tail
            Err(_) if is_final => break, // torn final append
            Err(message) => {
                return Err(JournalError::Corrupt {
                    line: line_no,
                    message,
                })
            }
        }
        offset = next;
    }
    Ok((events, valid))
}

/// Parses a journal file into its event list.
///
/// A missing file is an empty journal.  Torn-tail tolerance is [`parse_events`]'s:
/// an unparseable or unterminated final line is skipped; a bad line anywhere else
/// fails with [`JournalError::Corrupt`].
pub fn read_events(path: &Path) -> Result<Vec<JournalEvent>, JournalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    parse_events(&bytes).map(|(events, _)| events)
}

/// Reads the journal back and **truncates any torn tail**, so the append handle
/// starts on a clean line boundary.  Without the truncation, the first append
/// after a mid-write crash would glue its line onto the torn fragment, turning a
/// tolerated torn tail into fatal interior corruption on the *next* restart.
fn recover(path: &Path) -> Result<Vec<JournalEvent>, JournalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let (events, valid) = parse_events(&bytes)?;
    if valid < bytes.len() {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid as u64)?;
        file.sync_data()?;
    }
    Ok(events)
}

/// Folds an event sequence into the surviving state: for every still-registered model,
/// the key it must come back as and the artifact to load it from.
pub fn fold_events(events: &[JournalEvent]) -> Result<Vec<(ModelKey, String)>, JournalError> {
    let mut state: BTreeMap<(u64, String), (ModelKey, String)> = BTreeMap::new();
    for ev in events {
        let fp = ev.fingerprint()?;
        match ev.op.as_str() {
            // A promotion installs a current version exactly like a publish; the
            // op difference is provenance, not routing state.
            "publish" | "promote" => {
                state.insert((fp, ev.name.clone()), (ev.key()?, ev.artifact_path.clone()));
            }
            "deregister" => {
                state.remove(&(fp, ev.name.clone()));
            }
            other => {
                return Err(JournalError::Corrupt {
                    line: 0,
                    message: format!("unknown journal op {other:?}"),
                })
            }
        }
    }
    Ok(state.into_values().collect())
}

/// Atomically rewrites the journal at `path` to hold exactly one publish line per
/// entry of `folded`: temp file, `fdatasync`, `rename`, parent-directory fsync.  A
/// crash anywhere in the sequence leaves either the old journal or the fully synced
/// compacted one — never a mix.
fn rewrite_compacted(path: &Path, folded: &[(ModelKey, String)]) -> Result<(), JournalError> {
    let mut text = String::new();
    for (key, artifact_path) in folded {
        let ev = JournalEvent::publish(key, artifact_path.clone());
        text.push_str(&serde_json::to_string(&ev).map_err(|e| JournalError::Io(e.to_string()))?);
        text.push('\n');
    }
    let tmp = path.with_extension("compact");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename durable; a filesystem that cannot open
        // directories (exotic, but possible) just loses the guarantee, not the data.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The append handle: write-ahead journalling of registry mutations.
pub struct RegistryJournal {
    path: PathBuf,
    file: File,
    faults: FaultInjector,
    compact_threshold: Option<u64>,
    compactions: u64,
}

impl RegistryJournal {
    /// Opens (creating if absent) the journal at `path` for appending, first reading
    /// back the events already recorded — the caller replays those into its registry.
    /// A torn tail left by a crash is truncated away before the handle opens.
    pub fn open(path: impl Into<PathBuf>) -> Result<(Self, Vec<JournalEvent>), JournalError> {
        let path = path.into();
        let events = recover(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            RegistryJournal {
                path,
                file,
                faults: FaultInjector::disabled(),
                compact_threshold: None,
                compactions: 0,
            },
            events,
        ))
    }

    /// Installs the fault injector consulted by [`append`](Self::append) (fault
    /// points `journal.write-error`, `journal.torn-write`, `journal.fsync-error`).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Opens the journal at `path` **compacted**: the recorded history is folded to
    /// the surviving state, the file is atomically rewritten to hold exactly one
    /// publish line per surviving model, and the folded state is returned for replay.
    ///
    /// A journal only grows in normal operation (every swap appends), so a server
    /// restarted after months of retraining would otherwise replay — and keep —
    /// an unbounded history.  Compaction happens before the append handle opens:
    ///
    /// 1. read + fold (torn-tail tolerance identical to [`read_events`]);
    /// 2. write the folded lines to a `<path>.compact` temp file and `fdatasync` it;
    /// 3. atomically `rename` over the journal, then fsync the parent directory so
    ///    the rename itself survives power loss.
    ///
    /// A crash anywhere in that sequence leaves either the old journal or the fully
    /// synced compacted one — never a mix.  The rewrite is skipped when it would not
    /// shrink the file (fresh journals, already-compact journals).
    pub fn open_compacted(
        path: impl Into<PathBuf>,
    ) -> Result<(Self, Vec<(ModelKey, String)>), JournalError> {
        let path = path.into();
        let events = recover(&path)?;
        let folded = fold_events(&events)?;
        if folded.len() < events.len() {
            rewrite_compacted(&path, &folded)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            RegistryJournal {
                path,
                file,
                faults: FaultInjector::disabled(),
                compact_threshold: None,
                compactions: 0,
            },
            folded,
        ))
    }

    /// Arms running compaction: after any append that leaves the journal file larger
    /// than `bytes`, [`maybe_compact`](Self::maybe_compact) folds the history and
    /// atomically rewrites the file (same temp-file/rename/dir-fsync sequence as
    /// [`open_compacted`](Self::open_compacted)).  `None` disables (the default —
    /// compaction stays startup-only).
    pub fn set_compact_threshold(&mut self, bytes: Option<u64>) {
        self.compact_threshold = bytes;
    }

    /// How many running compactions this handle has performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Compacts the live journal in place if it exceeds the configured size
    /// threshold.  Returns `true` if a rewrite happened.
    ///
    /// The fold reuses [`open_compacted`](Self::open_compacted)'s machinery:
    /// read + fold (tolerating a torn tail left by an earlier failed append),
    /// atomic rewrite, then the append handle is reopened so later appends go to
    /// the new inode — the old handle would otherwise keep writing to the unlinked
    /// pre-compaction file.  A rewrite that would not shrink the file is skipped.
    /// Callers holding [`SharedJournal`]'s `"journal.file"` lock get this for free
    /// after every successful append, preserving the existing lock-order
    /// discipline (no other lock is taken while the file lock is held).
    pub fn maybe_compact(&mut self) -> Result<bool, JournalError> {
        let threshold = match self.compact_threshold {
            Some(t) => t,
            None => return Ok(false),
        };
        let size = std::fs::metadata(&self.path)?.len();
        if size <= threshold {
            return Ok(false);
        }
        let events = recover(&self.path)?;
        let folded = fold_events(&events)?;
        if folded.len() >= events.len() {
            return Ok(false);
        }
        rewrite_compacted(&self.path, &folded)?;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.compactions += 1;
        Ok(true)
    }

    /// Appends one event durably: the line is written and `fdatasync`ed before this
    /// returns, so callers may apply the mutation the moment it does.
    ///
    /// On `Err` the caller must treat the append as a crash: the event is **not**
    /// durable (its bytes may or may not have reached the file) and the handle may
    /// sit on a torn tail — discard it and reopen (which truncates the tail), then
    /// re-append; replay folds re-published events idempotently.  [`SharedJournal`]
    /// automates the reopen.
    pub fn append(&mut self, event: &JournalEvent) -> Result<(), JournalError> {
        let mut line = serde_json::to_string(event).map_err(|e| JournalError::Io(e.to_string()))?;
        line.push('\n');
        if let Some(msg) = self.faults.fail("journal.write-error") {
            // ENOSPC-style failure: nothing reached the file.
            return Err(JournalError::Io(msg));
        }
        if let Some(n) = self.faults.torn_len("journal.torn-write", line.len()) {
            // Crash mid-write: a strict prefix lands, the acknowledgement never comes.
            self.file.write_all(&line.as_bytes()[..n])?;
            return Err(JournalError::Io(format!(
                "injected fault: journal.torn-write ({n}/{} bytes)",
                line.len()
            )));
        }
        self.file.write_all(line.as_bytes())?;
        if let Some(msg) = self.faults.fail("journal.fsync-error") {
            // The bytes reached the file but durability was never established; the
            // event may legitimately reappear on replay (fold is idempotent).
            return Err(JournalError::Io(msg));
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A cloneable, thread-safe journal handle for transports that journal from worker
/// threads (the TCP reactor's admin path).
///
/// Serialises appends under the `"journal.file"` lock and **self-heals** after a
/// failed append: the journal is reopened in place (truncating any torn tail the
/// failure left behind) so subsequent appends start on a clean line boundary.  The
/// failed append itself is still reported — the caller must not apply the mutation.
#[derive(Clone)]
pub struct SharedJournal {
    inner: Arc<lockcheck::Mutex<RegistryJournal>>,
}

impl std::fmt::Debug for SharedJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedJournal").finish_non_exhaustive()
    }
}

impl SharedJournal {
    /// Wraps an opened journal for shared use.
    pub fn new(journal: RegistryJournal) -> Self {
        SharedJournal {
            inner: Arc::new(lockcheck::Mutex::new("journal.file", journal)),
        }
    }

    /// Appends one event durably (see [`RegistryJournal::append`]), recovering the
    /// handle on failure.
    pub fn append(&self, event: &JournalEvent) -> Result<(), JournalError> {
        let mut journal = self.inner.lock();
        match journal.append(event) {
            Ok(()) => {
                // Running compaction rides the same lock hold.  A compaction
                // failure is not an append failure — the event is durable and the
                // mutation must proceed; the journal is merely still long.
                let _ = journal.maybe_compact();
                Ok(())
            }
            Err(e) => {
                // Crash-equivalent recovery: reopen (truncates the torn tail) so the
                // handle stays usable.  Keep the original error either way.
                let faults = journal.faults.clone();
                let threshold = journal.compact_threshold;
                let compactions = journal.compactions;
                if let Ok((mut fresh, _)) = RegistryJournal::open(journal.path.clone()) {
                    fresh.set_faults(faults);
                    fresh.set_compact_threshold(threshold);
                    fresh.compactions = compactions;
                    *journal = fresh;
                }
                Err(e)
            }
        }
    }

    /// Arms (or disarms) running compaction on the shared handle (see
    /// [`RegistryJournal::set_compact_threshold`]).
    pub fn set_compact_threshold(&self, bytes: Option<u64>) {
        self.inner.lock().set_compact_threshold(bytes);
    }

    /// How many running compactions the shared handle has performed.
    pub fn compactions(&self) -> u64 {
        self.inner.lock().compactions()
    }

    /// Arms (or replaces) the fault injector consulted by later appends.
    pub fn set_faults(&self, faults: FaultInjector) {
        self.inner.lock().set_faults(faults);
    }

    /// The journal's path.
    pub fn path(&self) -> PathBuf {
        self.inner.lock().path.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nc-journal-test-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn events_round_trip_and_fold() {
        let path = temp_path("roundtrip");
        let (mut journal, existing) = RegistryJournal::open(&path).unwrap();
        assert!(existing.is_empty(), "fresh journal starts empty");

        let k1 = ModelKey::new(0xfeed, "m", 1);
        let k2 = ModelKey::new(0xfeed, "m", 2);
        let kb = ModelKey::new(0xbeef, "other", 1);
        journal
            .append(&JournalEvent::publish(&k1, "/tmp/a.ncm"))
            .unwrap();
        journal
            .append(&JournalEvent::publish(&k2, "/tmp/b.ncm"))
            .unwrap();
        journal
            .append(&JournalEvent::publish(&kb, "/tmp/c.ncm"))
            .unwrap();
        journal
            .append(&JournalEvent::deregister(0xbeef, "other"))
            .unwrap();
        drop(journal);

        // Reopen: all four events come back, and folding yields only the survivor at
        // its *latest* version.
        let (_, events) = RegistryJournal::open(&path).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].key().unwrap(), k1);
        let folded = fold_events(&events).unwrap();
        assert_eq!(folded, vec![(k2, "/tmp/b.ncm".to_string())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_tolerated_but_interior_corruption_is_not() {
        let path = temp_path("torn");
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal
            .append(&JournalEvent::publish(
                &ModelKey::new(1, "m", 1),
                "/tmp/a.ncm",
            ))
            .unwrap();
        drop(journal);

        // Simulate a crash mid-append: a torn trailing half-line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"op\":\"publish\",\"schema_fing");
        std::fs::write(&path, &text).unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 1, "torn last line is skipped");

        // The same garbage *before* a valid line is corruption, not a torn tail.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.rotate_right(1);
        std::fs::write(&path, lines.join("\n")).unwrap();
        assert!(matches!(
            read_events(&path),
            Err(JournalError::Corrupt { line: 1, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_compacted_folds_history_and_shrinks_the_file() {
        let path = temp_path("compact");
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        // Two models, one swapped twice, one deregistered: 5 events, 1 survivor.
        for (key, artifact) in [
            (ModelKey::new(0xfeed, "m", 1), "/tmp/a.ncm"),
            (ModelKey::new(0xfeed, "m", 2), "/tmp/b.ncm"),
            (ModelKey::new(0xfeed, "m", 3), "/tmp/c.ncm"),
            (ModelKey::new(0xbeef, "gone", 1), "/tmp/d.ncm"),
        ] {
            journal
                .append(&JournalEvent::publish(&key, artifact))
                .unwrap();
        }
        journal
            .append(&JournalEvent::deregister(0xbeef, "gone"))
            .unwrap();
        drop(journal);
        assert_eq!(read_events(&path).unwrap().len(), 5);

        let (mut journal, folded) = RegistryJournal::open_compacted(&path).unwrap();
        assert_eq!(
            folded,
            vec![(ModelKey::new(0xfeed, "m", 3), "/tmp/c.ncm".to_string())]
        );
        // The on-disk file now holds exactly the folded line...
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key().unwrap(), ModelKey::new(0xfeed, "m", 3));
        // ...and the handle appends after it without clobbering.
        journal
            .append(&JournalEvent::publish(
                &ModelKey::new(0xfeed, "m", 4),
                "/tmp/e.ncm",
            ))
            .unwrap();
        drop(journal);
        assert_eq!(read_events(&path).unwrap().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_compacted_tolerates_fresh_torn_and_already_compact_journals() {
        // Fresh (missing) journal: empty state, file created for appends.
        let path = temp_path("compact-fresh");
        let (journal, folded) = RegistryJournal::open_compacted(&path).unwrap();
        assert!(folded.is_empty());
        drop(journal);

        // Already compact: one live publish per model — no rewrite needed, nothing
        // lost.
        let (mut journal, _) = RegistryJournal::open_compacted(&path).unwrap();
        let key = ModelKey::new(7, "m", 1);
        journal
            .append(&JournalEvent::publish(&key, "/tmp/a.ncm"))
            .unwrap();
        drop(journal);
        let before = std::fs::read_to_string(&path).unwrap();
        let (_, folded) = RegistryJournal::open_compacted(&path).unwrap();
        assert_eq!(folded, vec![(key.clone(), "/tmp/a.ncm".to_string())]);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);

        // A torn tail is dropped by the compaction rewrite (it follows a swap, so
        // the file shrinks and is rewritten clean).
        let mut text = std::fs::read_to_string(&path).unwrap();
        let k2 = ModelKey::new(7, "m", 2);
        text.push_str(&serde_json::to_string(&JournalEvent::publish(&k2, "/tmp/b.ncm")).unwrap());
        text.push_str("\n{\"op\":\"publish\",\"schema_fing");
        std::fs::write(&path, &text).unwrap();
        let (_, folded) = RegistryJournal::open_compacted(&path).unwrap();
        assert_eq!(folded, vec![(k2.clone(), "/tmp/b.ncm".to_string())]);
        let clean = read_events(&path).unwrap();
        assert_eq!(clean.len(), 1);
        assert_eq!(clean[0].key().unwrap(), k2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_non_final_line_is_corruption() {
        // A tear that is *followed* by valid lines cannot be a crash tail — it is
        // interior corruption and must fail loudly, at the right line number.
        let path = temp_path("torn-interior");
        let good = serde_json::to_string(&JournalEvent::publish(
            &ModelKey::new(1, "m", 1),
            "/tmp/a.ncm",
        ))
        .unwrap();
        std::fs::write(&path, format!("{good}\n{{\"op\":\"pub\n{good}\n")).unwrap();
        assert!(matches!(
            read_events(&path),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_event_after_compaction_folds_idempotently() {
        // Crash-retry can legitimately append an event whose bytes already landed
        // (failed fsync); replay and compaction must treat the duplicate as a no-op.
        let path = temp_path("dup-after-compact");
        let key = ModelKey::new(0xfeed, "m", 2);
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal
            .append(&JournalEvent::publish(
                &ModelKey::new(0xfeed, "m", 1),
                "/tmp/a.ncm",
            ))
            .unwrap();
        journal
            .append(&JournalEvent::publish(&key, "/tmp/b.ncm"))
            .unwrap();
        drop(journal);
        let (mut journal, folded) = RegistryJournal::open_compacted(&path).unwrap();
        assert_eq!(folded, vec![(key.clone(), "/tmp/b.ncm".to_string())]);
        // The duplicate publish, re-appended after compaction.
        journal
            .append(&JournalEvent::publish(&key, "/tmp/b.ncm"))
            .unwrap();
        drop(journal);
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 2, "compacted line + duplicate");
        assert_eq!(
            fold_events(&events).unwrap(),
            vec![(key, "/tmp/b.ncm".to_string())]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deregister_then_register_same_key_survives_fold() {
        let path = temp_path("dereg-rereg");
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal
            .append(&JournalEvent::publish(
                &ModelKey::new(5, "m", 3),
                "/tmp/a.ncm",
            ))
            .unwrap();
        journal.append(&JournalEvent::deregister(5, "m")).unwrap();
        let back = ModelKey::new(5, "m", 1);
        journal
            .append(&JournalEvent::publish(&back, "/tmp/b.ncm"))
            .unwrap();
        drop(journal);
        // The re-registration wins — at *its* version (registration restarts the
        // version counter; replay must not resurrect version 3).
        let folded = fold_events(&read_events(&path).unwrap()).unwrap();
        assert_eq!(folded, vec![(back.clone(), "/tmp/b.ncm".to_string())]);
        // And compaction preserves exactly that.
        let (_, folded) = RegistryJournal::open_compacted(&path).unwrap();
        assert_eq!(folded, vec![(back, "/tmp/b.ncm".to_string())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_truncates_torn_tail_so_later_appends_stay_clean() {
        // The crash-consistency gap recover() closes: append-after-torn-tail must
        // not merge two events into one corrupt interior line.
        let path = temp_path("trim");
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal
            .append(&JournalEvent::publish(
                &ModelKey::new(1, "m", 1),
                "/tmp/a.ncm",
            ))
            .unwrap();
        drop(journal);
        let clean_len = std::fs::metadata(&path).unwrap().len();

        // Torn tail variant 1: unparseable fragment.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"op\":\"publish\",\"schema_fing");
        std::fs::write(&path, &bytes).unwrap();
        let (mut journal, events) = RegistryJournal::open(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        let k2 = ModelKey::new(1, "m", 2);
        journal
            .append(&JournalEvent::publish(&k2, "/tmp/b.ncm"))
            .unwrap();
        drop(journal);
        assert_eq!(read_events(&path).unwrap().len(), 2);

        // Torn tail variant 2: a line that parses but lost its newline — written,
        // never fsync-acknowledged.  It must be trimmed, not replayed.
        let mut bytes = std::fs::read(&path).unwrap();
        let unterminated = serde_json::to_string(&JournalEvent::publish(
            &ModelKey::new(1, "m", 9),
            "/tmp/x.ncm",
        ))
        .unwrap();
        bytes.extend_from_slice(unterminated.as_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (_, events) = RegistryJournal::open(&path).unwrap();
        assert_eq!(events.len(), 2, "unterminated tail is not replayed");
        assert_eq!(
            events.last().unwrap().key().unwrap(),
            k2,
            "trim stops at the last durable line"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn injected_append_faults_crash_consistently() {
        use crate::fault::FaultPlan;

        let path = temp_path("faults");
        let key = ModelKey::new(0xabc, "m", 1);

        // write-error: nothing reaches the file.
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal.set_faults(
            FaultPlan::new(3)
                .point("journal.write-error", 1000)
                .injector(),
        );
        assert!(journal
            .append(&JournalEvent::publish(&key, "/tmp/a.ncm"))
            .is_err());
        drop(journal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);

        // torn-write: a strict prefix lands; reopen trims it and the retry succeeds.
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal.set_faults(
            FaultPlan::new(3)
                .point("journal.torn-write", 1000)
                .injector(),
        );
        assert!(journal
            .append(&JournalEvent::publish(&key, "/tmp/a.ncm"))
            .is_err());
        drop(journal);
        let (mut journal, events) = RegistryJournal::open(&path).unwrap();
        assert!(events.is_empty(), "torn prefix must not replay");
        journal
            .append(&JournalEvent::publish(&key, "/tmp/a.ncm"))
            .unwrap();
        drop(journal);
        assert_eq!(read_events(&path).unwrap().len(), 1);

        // fsync-error: the full line may land; replay may include it (idempotent),
        // and the crash-retry re-append folds to the same state.
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal.set_faults(
            FaultPlan::new(3)
                .point("journal.fsync-error", 1000)
                .injector(),
        );
        let k2 = ModelKey::new(0xabc, "m", 2);
        assert!(journal
            .append(&JournalEvent::publish(&k2, "/tmp/b.ncm"))
            .is_err());
        drop(journal);
        let (mut journal, events) = RegistryJournal::open(&path).unwrap();
        assert_eq!(events.len(), 2, "fsync-failed line landed in full");
        journal
            .append(&JournalEvent::publish(&k2, "/tmp/b.ncm"))
            .unwrap();
        drop(journal);
        let folded = fold_events(&read_events(&path).unwrap()).unwrap();
        assert_eq!(folded, vec![(k2, "/tmp/b.ncm".to_string())]);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn shared_journal_self_heals_after_failed_append() {
        use crate::fault::FaultPlan;

        let path = temp_path("shared-heal");
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal.set_faults(
            FaultPlan::new(1)
                .point("journal.torn-write", 1000)
                .injector(),
        );
        let shared = SharedJournal::new(journal);
        let key = ModelKey::new(9, "m", 1);
        assert!(shared
            .append(&JournalEvent::publish(&key, "/tmp/a.ncm"))
            .is_err());
        // The handle healed: the torn tail was trimmed, but the injector still
        // fires — swap in a quiet one to prove the *file* recovered.
        {
            let mut inner = shared.inner.lock();
            inner.set_faults(FaultInjector::disabled());
        }
        shared
            .append(&JournalEvent::publish(&key, "/tmp/a.ncm"))
            .unwrap();
        assert_eq!(read_events(&path).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_empty_and_fingerprints_are_hex_exact() {
        assert_eq!(
            read_events(Path::new("/nonexistent/nc-journal.jsonl")).unwrap(),
            Vec::new()
        );
        // The full 64-bit range survives the hex round trip (JSON numbers would not be
        // trusted with this).
        let key = ModelKey::new(u64::MAX, "m", 3);
        let ev = JournalEvent::publish(&key, "p");
        assert_eq!(ev.schema_fingerprint, "ffffffffffffffff");
        assert_eq!(ev.key().unwrap(), key);
        let reparsed: JournalEvent =
            serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(reparsed, ev);
        // Unknown ops fail the fold loudly.
        let bad = JournalEvent {
            op: "vanish".into(),
            ..ev
        };
        assert!(fold_events(&[bad]).is_err());
    }

    #[test]
    fn promote_folds_like_publish_and_survives_compaction() {
        let path = temp_path("promote");
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        let v1 = ModelKey::new(0xfeed, "m", 1);
        let v2 = ModelKey::new(0xfeed, "m", 2);
        journal
            .append(&JournalEvent::publish(&v1, "/tmp/a.ncm"))
            .unwrap();
        journal
            .append(&JournalEvent::promote(&v2, "/tmp/b.ncm"))
            .unwrap();
        drop(journal);

        // Raw replay keeps the provenance; the fold routes to the promoted version.
        let events = read_events(&path).unwrap();
        assert_eq!(events[1].op, "promote");
        assert_eq!(
            fold_events(&events).unwrap(),
            vec![(v2.clone(), "/tmp/b.ncm".to_string())]
        );
        // Compaction folds the promotion into the surviving publish line.
        let (_, folded) = RegistryJournal::open_compacted(&path).unwrap();
        assert_eq!(folded, vec![(v2, "/tmp/b.ncm".to_string())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn running_compaction_fires_past_the_size_threshold() {
        let path = temp_path("running-compact");
        let (mut journal, _) = RegistryJournal::open(&path).unwrap();
        journal.set_compact_threshold(Some(256));
        // Swap the same model repeatedly: history grows, survivors stay at one.
        let mut fired = 0u64;
        for v in 1..=40u64 {
            let key = ModelKey::new(0xfeed, "m", v);
            journal
                .append(&JournalEvent::publish(&key, "/tmp/m.ncm"))
                .unwrap();
            if journal.maybe_compact().unwrap() {
                fired += 1;
                // Post-compaction the file holds exactly the one survivor...
                let events = read_events(&path).unwrap();
                assert_eq!(events.len(), 1);
                assert_eq!(events[0].key().unwrap(), key);
                assert!(std::fs::metadata(&path).unwrap().len() <= 256);
            }
        }
        assert!(
            fired >= 2,
            "40 swaps over a 256-byte cap must compact repeatedly"
        );
        assert_eq!(journal.compactions(), fired);
        // ...and the reopened append handle writes to the new inode: the next
        // append lands in the compacted file, not the unlinked one.
        let last = ModelKey::new(0xfeed, "m", 41);
        journal
            .append(&JournalEvent::publish(&last, "/tmp/m.ncm"))
            .unwrap();
        drop(journal);
        let folded = fold_events(&read_events(&path).unwrap()).unwrap();
        assert_eq!(folded, vec![(last, "/tmp/m.ncm".to_string())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_journal_compacts_inline_and_reports_the_count() {
        let path = temp_path("shared-compact");
        let (journal, _) = RegistryJournal::open(&path).unwrap();
        let shared = SharedJournal::new(journal);
        shared.set_compact_threshold(Some(256));
        for v in 1..=40u64 {
            shared
                .append(&JournalEvent::publish(
                    &ModelKey::new(0xbeef, "m", v),
                    "/tmp/m.ncm",
                ))
                .unwrap();
        }
        assert!(shared.compactions() >= 2);
        // The live file never strays far past the cap: at most the threshold plus
        // the appends since the last fold.
        assert!(std::fs::metadata(&path).unwrap().len() < 512);
        let folded = fold_events(&read_events(&path).unwrap()).unwrap();
        assert_eq!(
            folded,
            vec![(ModelKey::new(0xbeef, "m", 40), "/tmp/m.ncm".to_string())]
        );
        let _ = std::fs::remove_file(&path);
    }
}
