//! Crash-consistency torture for the registry journal under injected write faults.
//!
//! For each seed, a scripted publish/deregister history is appended through a
//! journal whose `journal.*` fault points are armed.  Every failed append is
//! treated exactly as production must treat it: the handle is a write to a
//! crashed process — discard it, reopen (which truncates any torn tail), and
//! retry the event.  After every crash and at the end, the invariant checked is
//! **prefix consistency**:
//!
//! * the journal never *invents* an event (everything replayed was attempted),
//! * it never *loses* a durably acknowledged event, and
//! * a failed append leaves either nothing (write error, torn write — the torn
//!   tail is trimmed on reopen) or the complete line (fsync error: written but
//!   unacknowledged — legal for replay, and the retry folds to a no-op).
//!
//! Each seed runs twice and must reproduce bit-identical fault-point hit counts
//! and bit-identical final journal bytes — the replayability contract of
//! `nc_serve::fault`.
//!
//! Fault hooks are compiled away in release builds, so this torture only means
//! something under `debug_assertions` (the workspace test profile keeps them on).
#![cfg(debug_assertions)]

use std::path::PathBuf;

use nc_serve::journal::fold_events;
use nc_serve::{FaultCount, FaultPlan, JournalEvent, ModelKey, RegistryJournal};

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "nc-journal-torture-{tag}-{}.jsonl",
        std::process::id()
    ));
    p
}

/// The scripted history: publishes, swaps, deregisters, and a re-registration
/// under a previously deregistered key.
fn script() -> Vec<JournalEvent> {
    let fp1 = 0x1111_2222_3333_4444u64;
    let fp2 = 0xaaaa_bbbb_cccc_ddddu64;
    vec![
        JournalEvent::publish(&ModelKey::new(fp1, "m", 1), "a1.ncar"),
        JournalEvent::publish(&ModelKey::new(fp2, "n", 1), "b1.ncar"),
        JournalEvent::publish(&ModelKey::new(fp1, "m", 2), "a2.ncar"),
        JournalEvent::deregister(fp1, "m"),
        JournalEvent::publish(&ModelKey::new(fp1, "m", 1), "a3.ncar"),
        JournalEvent::publish(&ModelKey::new(fp2, "n", 2), "b2.ncar"),
        JournalEvent::deregister(fp2, "n"),
        JournalEvent::publish(&ModelKey::new(fp1, "q", 1), "c1.ncar"),
        JournalEvent::publish(&ModelKey::new(fp2, "n", 1), "b3.ncar"),
        JournalEvent::deregister(fp1, "q"),
    ]
}

fn render(events: &[JournalEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| serde_json::to_string(e).unwrap())
        .collect()
}

/// Replay must be exactly the known file contents, or those contents plus the
/// one event whose append just failed (fsync-error: written, unacknowledged).
fn assert_prefix_consistent(
    replayed: &[JournalEvent],
    durable: &[JournalEvent],
    attempted: &JournalEvent,
) {
    let got = render(replayed);
    let known = render(durable);
    let mut with_attempt = known.clone();
    with_attempt.push(serde_json::to_string(attempted).unwrap());
    assert!(
        got == known || got == with_attempt,
        "replay diverged from the acknowledged prefix:\n got: {got:#?}\nknown: {known:#?}\nattempted: {attempted:?}"
    );
}

/// One full torture run at `seed`; returns the fault counters, the final journal
/// bytes, and the folded survivor state.
fn torture(seed: u64, tag: &str) -> (Vec<FaultCount>, Vec<u8>, Vec<(ModelKey, String)>) {
    let path = temp_path(tag);
    let _ = std::fs::remove_file(&path);
    let plan = FaultPlan::new(seed)
        .point("journal.torn-write", 250)
        .point("journal.write-error", 200)
        .point("journal.fsync-error", 200);
    let injector = plan.injector();

    let (mut journal, replayed) = RegistryJournal::open(&path).unwrap();
    assert!(replayed.is_empty());
    journal.set_faults(injector.clone());

    let script = script();
    // `durable` mirrors the journal file's exact contents at all times.
    let mut durable: Vec<JournalEvent> = Vec::new();
    let mut crashes = 0u32;
    let mut compacted = false;
    let mut i = 0;
    while i < script.len() {
        match journal.append(&script[i]) {
            Ok(()) => {
                durable.push(script[i].clone());
                i += 1;
            }
            Err(_) => {
                // Crash: the handle is dead.  Reopen trims any torn tail; the
                // replay must be the acknowledged prefix, at most extended by the
                // fully-written-but-unsynced line.  Then retry the same event —
                // folding is idempotent, so an fsync-error duplicate is harmless.
                crashes += 1;
                assert!(
                    crashes < 10_000,
                    "fault schedule never lets the script finish"
                );
                drop(journal);
                let (fresh, replayed) = RegistryJournal::open(&path).unwrap();
                assert_prefix_consistent(&replayed, &durable, &script[i]);
                durable = replayed;
                journal = fresh;
                journal.set_faults(injector.clone());
            }
        }
        // One mid-script compacted restart on a third of the seeds: the folded
        // rewrite must preserve exactly the folded state of what was durable.
        if !compacted && i == script.len() / 2 && seed % 3 == 0 {
            compacted = true;
            let folded_before = fold_events(&durable).unwrap();
            drop(journal);
            let (fresh, survivors) = RegistryJournal::open_compacted(&path).unwrap();
            assert_eq!(survivors, folded_before, "compaction changed the state");
            // The compacted file holds one publish per survivor, in fold order.
            durable = survivors
                .iter()
                .map(|(key, artifact)| JournalEvent::publish(key, artifact.as_str()))
                .collect();
            journal = fresh;
            journal.set_faults(injector.clone());
        }
    }

    // Final restart: everything scripted must have survived, exactly once each in
    // fold space.
    drop(journal);
    let (_, replayed) = RegistryJournal::open(&path).unwrap();
    assert_eq!(render(&replayed), render(&durable));
    let folded = fold_events(&replayed).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    (injector.counts(), bytes, folded)
}

#[test]
fn crash_replay_is_prefix_consistent_across_fault_schedules() {
    let fp1 = 0x1111_2222_3333_4444u64;
    let fp2 = 0xaaaa_bbbb_cccc_ddddu64;
    // The script's net effect, independent of any fault schedule.
    let want = vec![
        (ModelKey::new(fp1, "m", 1), "a3.ncar".to_string()),
        (ModelKey::new(fp2, "n", 1), "b3.ncar".to_string()),
    ];
    let mut total_fired = 0u64;
    for seed in 0..24u64 {
        let (counts, _, folded) = torture(seed, &format!("seed{seed}"));
        assert_eq!(folded, want, "seed {seed} lost or invented state");
        total_fired += counts.iter().map(|c| c.fired).sum::<u64>();
    }
    // The battery must actually have injected faults, or it proved nothing.
    assert!(total_fired > 0, "no fault ever fired across 24 seeds");
}

#[test]
fn the_same_seed_replays_the_same_torture_bit_identically() {
    for seed in [3u64, 7, 12] {
        let (counts_a, bytes_a, folded_a) = torture(seed, &format!("replay-a{seed}"));
        let (counts_b, bytes_b, folded_b) = torture(seed, &format!("replay-b{seed}"));
        assert_eq!(counts_a, counts_b, "seed {seed}: fault hit counts diverged");
        assert_eq!(
            bytes_a, bytes_b,
            "seed {seed}: final journal bytes diverged"
        );
        assert_eq!(folded_a, folded_b);
        assert!(
            counts_a.iter().any(|c| c.fired > 0),
            "seed {seed} fired nothing"
        );
    }
}
