//! Parallel batch sampling (paper §4.1, "Parallel sampling"; evaluated in Figure 7b).
//!
//! This is the legacy one-shot entry point: it spawns scoped threads per call — the
//! spawn-per-batch scheme the persistent [`crate::pool::SamplerPool`] exists to replace —
//! but shares the pool's chunking ([`crate::pool::chunk_quotas`]) and stream derivation
//! ([`derive_stream_seed`] over `(seed, batch 0, worker)`), so its output is identical to
//! `pool.submit_indexed(0, n)` for the same `(seed, threads)`.  Callers with more than
//! one batch to draw should hold a [`crate::pool::SamplerPool`] instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_storage::Value;

use crate::pool::chunk_quotas;
use crate::sampler::JoinSampler;
use crate::seed::derive_stream_seed;
use crate::wide::WideLayout;

/// Draws `n` wide-layout tuples using `threads` sampling threads.
///
/// The sampler and layout are shared read-only across threads (the join counts are behind
/// an `Arc`).  With `threads == 1` this is equivalent to sequential sampling; the result
/// for any `threads` equals the corresponding [`crate::pool::SamplerPool`] batch `0`.
pub fn sample_wide_batch_parallel(
    sampler: &JoinSampler,
    layout: &WideLayout,
    n: usize,
    threads: usize,
    seed: u64,
) -> Vec<Vec<Value>> {
    let threads = threads.max(1);
    let chunk = |worker: u64, quota: usize| {
        let mut rng = StdRng::seed_from_u64(derive_stream_seed(seed, 0, worker));
        let samples = sampler.sample_many(&mut rng, quota);
        layout.materialize_batch(sampler.database(), &samples)
    };
    if threads == 1 {
        // Sequential fast path: exactly worker 0's stream for batch 0.
        return chunk(0, n);
    }
    let mut out: Vec<Vec<Vec<Value>>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (worker, quota) in chunk_quotas(n, threads).enumerate() {
            if quota == 0 {
                continue;
            }
            let chunk = &chunk;
            handles.push(scope.spawn(move || chunk(worker as u64, quota)));
        }
        for h in handles {
            out.push(h.join().expect("sampling thread panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, JoinSchema};
    use nc_storage::{Database, TableBuilder};
    use std::sync::Arc;

    fn tiny() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "v"]);
        for i in 0..20 {
            a.push_row(vec![Value::Int(i % 5), Value::Int(i)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "w"]);
        for i in 0..30 {
            b.push_row(vec![Value::Int(i % 6), Value::Int(i * 10)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn parallel_batch_has_requested_size_and_valid_rows() {
        let (db, schema) = tiny();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let layout = WideLayout::new(&db, &schema);
        for threads in [1, 2, 4] {
            let batch = sample_wide_batch_parallel(&sampler, &layout, 257, threads, 42);
            assert_eq!(batch.len(), 257, "threads={threads}");
            for row in &batch {
                assert_eq!(row.len(), layout.len());
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_and_threads() {
        let (db, schema) = tiny();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let layout = WideLayout::new(&db, &schema);
        let a = sample_wide_batch_parallel(&sampler, &layout, 200, 3, 7);
        let b = sample_wide_batch_parallel(&sampler, &layout, 200, 3, 7);
        assert_eq!(a, b);
        let c = sample_wide_batch_parallel(&sampler, &layout, 200, 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn single_thread_fast_path_matches_pool_chunking() {
        use crate::pool::SamplerPool;
        let (db, schema) = tiny();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let layout = WideLayout::new(&db, &schema);
        let seq = sample_wide_batch_parallel(&sampler, &layout, 64, 1, 5);
        let pool = SamplerPool::new(
            Arc::new(sampler.clone()),
            Arc::new(layout.clone()),
            1,
            5,
            None,
        );
        assert_eq!(seq, pool.submit_indexed(0, 64).wait().into_wide());
    }

    #[test]
    fn small_requests_still_return_requested_size() {
        let (db, schema) = tiny();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let layout = WideLayout::new(&db, &schema);
        let batch = sample_wide_batch_parallel(&sampler, &layout, 3, 8, 1);
        assert_eq!(batch.len(), 3);
    }
}
