//! Parallel batch sampling (paper §4.1, "Parallel sampling"; evaluated in Figure 7b).
//!
//! Once the join count tables are computed, sampling threads only read shared state, so
//! producing a training batch parallelises trivially.  Each thread gets an independent,
//! deterministically derived PRNG stream; the result is the concatenation of the per-thread
//! batches, so the output is reproducible for a fixed `(seed, threads)` pair.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_storage::Value;

use crate::sampler::JoinSampler;
use crate::wide::WideLayout;

/// Draws `n` wide-layout tuples using `threads` sampling threads.
///
/// The sampler and layout are shared read-only across threads (the join counts are behind
/// an `Arc`).  With `threads == 1` this is equivalent to sequential sampling.
pub fn sample_wide_batch_parallel(
    sampler: &JoinSampler,
    layout: &WideLayout,
    n: usize,
    threads: usize,
    seed: u64,
) -> Vec<Vec<Value>> {
    let threads = threads.max(1);
    if threads == 1 || n < threads * 4 {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = sampler.sample_many(&mut rng, n);
        return layout.materialize_batch(sampler.database(), samples.as_slice());
    }

    let per_thread = n / threads;
    let remainder = n % threads;
    let mut out: Vec<Vec<Vec<Value>>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let quota = per_thread + usize::from(t < remainder);
            let sampler_ref = &*sampler;
            let layout_ref = &*layout;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(t as u64 + 1),
                );
                let samples = sampler_ref.sample_many(&mut rng, quota);
                layout_ref.materialize_batch(sampler_ref.database(), &samples)
            }));
        }
        for h in handles {
            out.push(h.join().expect("sampling thread panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, JoinSchema};
    use nc_storage::{Database, TableBuilder};
    use std::sync::Arc;

    fn tiny() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "v"]);
        for i in 0..20 {
            a.push_row(vec![Value::Int(i % 5), Value::Int(i)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "w"]);
        for i in 0..30 {
            b.push_row(vec![Value::Int(i % 6), Value::Int(i * 10)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn parallel_batch_has_requested_size_and_valid_rows() {
        let (db, schema) = tiny();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let layout = WideLayout::new(&db, &schema);
        for threads in [1, 2, 4] {
            let batch = sample_wide_batch_parallel(&sampler, &layout, 257, threads, 42);
            assert_eq!(batch.len(), 257, "threads={threads}");
            for row in &batch {
                assert_eq!(row.len(), layout.len());
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_and_threads() {
        let (db, schema) = tiny();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let layout = WideLayout::new(&db, &schema);
        let a = sample_wide_batch_parallel(&sampler, &layout, 200, 3, 7);
        let b = sample_wide_batch_parallel(&sampler, &layout, 200, 3, 7);
        assert_eq!(a, b);
        let c = sample_wide_batch_parallel(&sampler, &layout, 200, 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn small_requests_fall_back_to_sequential() {
        let (db, schema) = tiny();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let layout = WideLayout::new(&db, &schema);
        let batch = sample_wide_batch_parallel(&sampler, &layout, 3, 8, 1);
        assert_eq!(batch.len(), 3);
    }
}
