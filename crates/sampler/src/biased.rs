//! A deliberately *biased* join sampler (ablation study, Table 5 row A).
//!
//! The paper shows that replacing the Exact Weight sampler with an IBJS-style walk — draw a
//! root tuple uniformly, then at every child pick a join partner uniformly among matches —
//! systematically distorts the learned distribution (a 33× median error versus 1.9×).  The
//! distortion comes from ignoring the *downstream* join counts: a root tuple that fans out
//! into thousands of full-join rows is sampled as often as one that fans out into a single
//! row.
//!
//! [`BiasedSampler`] mirrors [`crate::JoinSampler`]'s interface so the ablation harness can
//! swap it in without touching the training code.

use std::sync::Arc;

use rand::Rng;

use nc_schema::JoinSchema;
use nc_storage::{Database, RowId, Value};

use crate::join_counts::CompositeKey;
use crate::sampler::JoinSample;

/// IBJS-style biased sampler over the augmented full outer join.
#[derive(Debug, Clone)]
pub struct BiasedSampler {
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
    order: Vec<String>,
}

impl BiasedSampler {
    /// Builds the biased sampler (only needs the base-table indexes, no join counts).
    pub fn new(db: Arc<Database>, schema: Arc<JoinSchema>) -> Self {
        let order = schema.bfs_order().to_vec();
        BiasedSampler { db, schema, order }
    }

    /// The table order used by [`JoinSample::slots`].
    pub fn table_order(&self) -> &[String] {
        &self.order
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Draws one (biased) sample: root uniform over base rows, children uniform over index
    /// matches.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> JoinSample {
        let mut slots: Vec<Option<RowId>> = Vec::with_capacity(self.order.len());
        let root = self.db.expect_table(&self.order[0]);
        // Root: uniform over real rows (the biased walk never starts at ⊥, another source
        // of bias versus the exact sampler).
        let root_row = rng.random_range(0..root.num_rows().max(1)) as RowId;
        slots.push(if root.num_rows() == 0 {
            None
        } else {
            Some(root_row)
        });

        for table_name in self.order.iter().skip(1) {
            let parent_name = self.schema.parent(table_name).expect("non-root");
            let parent_idx = self
                .order
                .iter()
                .position(|t| t == parent_name)
                .expect("parent before child");
            let slot = match slots[parent_idx] {
                None => None,
                Some(parent_row) => {
                    let key = self.edge_key(parent_name, table_name, parent_row);
                    if key.iter().any(Value::is_null) {
                        None
                    } else {
                        let matches = self.matching_rows(table_name, parent_name, &key);
                        if matches.is_empty() {
                            None
                        } else {
                            Some(matches[rng.random_range(0..matches.len())])
                        }
                    }
                }
            };
            slots.push(slot);
        }
        JoinSample { slots }
    }

    /// Draws `n` samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<JoinSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    fn edge_key(&self, parent: &str, child: &str, row: RowId) -> CompositeKey {
        let table = self.db.expect_table(parent);
        self.schema
            .edges_between(parent, child)
            .iter()
            .map(|e| table.value(&e.endpoint(parent).expect("touches parent").column, row))
            .collect()
    }

    /// Rows of `child` matching the composite key, via the single-column storage indexes
    /// (intersecting match lists for multi-key joins, as footnote 2 of the paper describes).
    fn matching_rows(&self, child: &str, parent: &str, key: &CompositeKey) -> Vec<RowId> {
        let edges = self.schema.edges_between(parent, child);
        let mut result: Option<Vec<RowId>> = None;
        for (edge, key_val) in edges.iter().zip(key) {
            let col = &edge.endpoint(child).expect("touches child").column;
            let index = self.db.index(child, col);
            let rows = index.lookup(key_val).to_vec();
            result = Some(match result {
                None => rows,
                Some(prev) => prev.into_iter().filter(|r| rows.contains(r)).collect(),
            });
        }
        result.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::JoinSampler;
    use nc_schema::JoinEdge;
    use nc_storage::TableBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Root with two keys: key 1 has a single child match, key 2 has nine.  The exact
    /// sampler must visit key-2 rows ~9× as often; the biased sampler visits both equally.
    fn skewed() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        a.push_row(vec![Value::Int(2)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x"]);
        b.push_row(vec![Value::Int(1)]);
        for _ in 0..9 {
            b.push_row(vec![Value::Int(2)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn biased_sampler_over_represents_low_fanout_roots() {
        let (db, schema) = skewed();
        let biased = BiasedSampler::new(db.clone(), schema.clone());
        let exact = JoinSampler::new(db.clone(), schema.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let frac_root1 = |samples: &[JoinSample]| {
            samples.iter().filter(|s| s.slots[0] == Some(0)).count() as f64 / samples.len() as f64
        };
        let biased_frac = frac_root1(&biased.sample_many(&mut rng, n));
        let exact_frac = frac_root1(&exact.sample_many(&mut rng, n));
        // True full-join share of root row 0 is 1/10; the biased walk gives it ~1/2.
        assert!((exact_frac - 0.1).abs() < 0.02, "exact {exact_frac}");
        assert!((biased_frac - 0.5).abs() < 0.03, "biased {biased_frac}");
    }

    #[test]
    fn biased_samples_respect_join_keys() {
        let (db, schema) = skewed();
        let biased = BiasedSampler::new(db.clone(), schema.clone());
        assert_eq!(biased.table_order(), &["A", "B"]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let s = biased.sample(&mut rng);
            if let (Some(a), Some(b)) = (s.slots[0], s.slots[1]) {
                assert_eq!(
                    biased.database().expect_table("A").value("x", a),
                    biased.database().expect_table("B").value("x", b)
                );
            }
        }
    }
}
