//! Persistent sampling worker pool (paper §4.1, "Parallel sampling"; Figure 7b).
//!
//! Training cost is dominated by repeatedly requesting batches of sampled tuples (§2.2),
//! and spawning OS threads per batch — what [`crate::sample_wide_batch_parallel`] did
//! originally — wastes a fixed spawn/join cost on every batch.  [`SamplerPool`] keeps
//! `threads` long-lived workers fed over channels instead: a batch request is split into
//! one chunk per worker, each worker samples (and optionally encodes) its chunk with a
//! private RNG stream, and the chunks are reassembled in worker order.
//!
//! # Determinism contract
//!
//! Worker `t`'s stream for batch `b` is seeded with
//! [`derive_stream_seed`]`(seed, b, t)` and its chunk size is a pure function of
//! `(n, threads)`, so the assembled batch depends only on `(seed, threads, b, n)` — not on
//! scheduling, the number of batches in flight, or whether the caller prefetches.  A fixed
//! `(seed, threads)` pair therefore yields an identical sample stream at any prefetch
//! depth, and [`crate::sample_wide_batch_parallel`] (a thin wrapper over this module's
//! chunking) produces exactly the pool's batch `0` for the same arguments.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_storage::Value;

use crate::sampler::JoinSampler;
use crate::seed::derive_stream_seed;
use crate::wide::WideLayout;

/// Post-processing a worker applies to its materialised chunk before handing it back —
/// in practice token encoding, so that encoding overlaps the consumer's compute.
pub type BatchEncoder = Arc<dyn Fn(&[Vec<Value>]) -> Vec<Vec<u32>> + Send + Sync>;

/// A completed batch: wide rows, or encoded tokens when the pool has an encoder.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolBatch {
    /// Materialised wide-layout rows (pool built without an encoder).
    Wide(Vec<Vec<Value>>),
    /// Token-encoded rows (pool built with an encoder).
    Encoded(Vec<Vec<u32>>),
}

impl PoolBatch {
    /// Unwraps the wide rows; panics if the pool encoded the batch.
    pub fn into_wide(self) -> Vec<Vec<Value>> {
        match self {
            PoolBatch::Wide(rows) => rows,
            PoolBatch::Encoded(_) => panic!("pool was built with an encoder; batch is encoded"),
        }
    }

    /// Unwraps the encoded tokens; panics if the pool did not encode.
    pub fn into_encoded(self) -> Vec<Vec<u32>> {
        match self {
            PoolBatch::Encoded(tokens) => tokens,
            PoolBatch::Wide(_) => panic!("pool was built without an encoder; batch is wide"),
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        match self {
            PoolBatch::Wide(rows) => rows.len(),
            PoolBatch::Encoded(tokens) => tokens.len(),
        }
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum ChunkPayload {
    Wide(Vec<Vec<Value>>),
    Encoded(Vec<Vec<u32>>),
}

struct Job {
    quota: usize,
    stream_seed: u64,
    reply: Sender<(usize, ChunkPayload)>,
}

/// Handle to one in-flight batch; [`BatchTicket::wait`] blocks until every worker chunk
/// has arrived and assembles them in worker order.
pub struct BatchTicket {
    batch_index: u64,
    expected: usize,
    encoded: bool,
    rx: Receiver<(usize, ChunkPayload)>,
}

impl BatchTicket {
    /// The batch index this ticket was submitted under.
    pub fn batch_index(&self) -> u64 {
        self.batch_index
    }

    /// Blocks until the batch is complete and returns it.
    ///
    /// Chunks are reassembled in worker order regardless of completion order, so the
    /// result is independent of scheduling.
    pub fn wait(self) -> PoolBatch {
        let mut chunks: Vec<Option<ChunkPayload>> = Vec::new();
        chunks.resize_with(self.expected, || None);
        for _ in 0..self.expected {
            let (worker, payload) = self
                .rx
                .recv()
                .expect("sampler pool worker dropped a chunk (worker panicked?)");
            chunks[worker] = Some(payload);
        }
        if self.encoded {
            let mut out = Vec::new();
            for c in chunks {
                match c.expect("all chunks received") {
                    ChunkPayload::Encoded(tokens) => out.extend(tokens),
                    ChunkPayload::Wide(_) => unreachable!("encoder pool produced wide chunk"),
                }
            }
            PoolBatch::Encoded(out)
        } else {
            let mut out = Vec::new();
            for c in chunks {
                match c.expect("all chunks received") {
                    ChunkPayload::Wide(rows) => out.extend(rows),
                    ChunkPayload::Encoded(_) => unreachable!("plain pool produced encoded chunk"),
                }
            }
            PoolBatch::Wide(out)
        }
    }
}

/// A persistent pool of sampling workers over one `(sampler, layout)` pair.
///
/// Workers live until the pool is dropped; queued jobs are drained before the workers
/// exit, so tickets submitted before the drop remain waitable.
pub struct SamplerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    seed: u64,
    encoded: bool,
}

impl SamplerPool {
    /// Spawns `threads` workers sharing `sampler`/`layout`, with streams rooted at `seed`.
    ///
    /// When `encoder` is provided, workers encode their chunk after materialising it and
    /// the pool yields [`PoolBatch::Encoded`] batches.
    pub fn new(
        sampler: Arc<JoinSampler>,
        layout: Arc<WideLayout>,
        threads: usize,
        seed: u64,
        encoder: Option<BatchEncoder>,
    ) -> Self {
        let threads = threads.max(1);
        let encoded = encoder.is_some();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (tx, rx) = channel::<Job>();
            let sampler = sampler.clone();
            let layout = layout.clone();
            let encoder = encoder.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(worker, rx, &sampler, &layout, encoder.as_deref())
            }));
            senders.push(tx);
        }
        SamplerPool {
            senders,
            handles,
            seed,
            encoded,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Submits a batch under an explicit batch index.  Callers own the batch numbering
    /// (the trainer's counter persists across pool rebuilds on source swaps), so the pool
    /// deliberately keeps no sequencing state of its own.
    ///
    /// The result depends only on `(seed, threads, batch_index, n)`; submitting the same
    /// index twice reproduces the same batch.
    pub fn submit_indexed(&self, batch_index: u64, n: usize) -> BatchTicket {
        let (reply_tx, reply_rx) = channel();
        let mut expected = 0usize;
        for (worker, quota) in chunk_quotas(n, self.threads()).enumerate() {
            if quota == 0 {
                continue;
            }
            self.senders[worker]
                .send(Job {
                    quota,
                    stream_seed: derive_stream_seed(self.seed, batch_index, worker as u64),
                    reply: reply_tx.clone(),
                })
                .expect("sampler pool worker exited while pool is alive");
            expected += 1;
        }
        // Quotas are front-loaded, so the workers that received a job are exactly
        // 0..expected and chunk assembly can index by raw worker id.
        BatchTicket {
            batch_index,
            expected,
            encoded: self.encoded,
            rx: reply_rx,
        }
    }
}

impl Drop for SamplerPool {
    fn drop(&mut self) {
        // Closing the job channels lets each worker drain its queue and exit.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-worker chunk sizes for a batch of `n` rows over `threads` workers: `n / threads`
/// each, with the remainder spread over the first workers (front-loaded, so zero quotas
/// can only trail).  Shared with the legacy spawn-per-batch wrapper so both produce the
/// same chunking.
pub(crate) fn chunk_quotas(n: usize, threads: usize) -> impl Iterator<Item = usize> {
    let per = n / threads;
    let rem = n % threads;
    (0..threads).map(move |t| per + usize::from(t < rem))
}

fn worker_loop(
    worker: usize,
    rx: Receiver<Job>,
    sampler: &JoinSampler,
    layout: &WideLayout,
    encoder: Option<&(dyn Fn(&[Vec<Value>]) -> Vec<Vec<u32>> + Send + Sync)>,
) {
    // `recv` keeps returning queued jobs after the pool drops its senders, so in-flight
    // tickets stay waitable during shutdown.
    while let Ok(job) = rx.recv() {
        let mut rng = StdRng::seed_from_u64(job.stream_seed);
        let samples = sampler.sample_many(&mut rng, job.quota);
        let rows = layout.materialize_batch(sampler.database(), &samples);
        let payload = match encoder {
            Some(enc) => ChunkPayload::Encoded(enc(&rows)),
            None => ChunkPayload::Wide(rows),
        };
        // The ticket may have been dropped without waiting; that is not an error.
        let _ = job.reply.send((worker, payload));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::sample_wide_batch_parallel;
    use nc_schema::{JoinEdge, JoinSchema};
    use nc_storage::{Database, TableBuilder};

    fn tiny() -> (Arc<JoinSampler>, Arc<WideLayout>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "v"]);
        for i in 0..25 {
            a.push_row(vec![Value::Int(i % 5), Value::Int(i)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "w"]);
        for i in 0..40 {
            b.push_row(vec![Value::Int(i % 7), Value::Int(i * 10)]);
        }
        db.add_table(b.finish());
        let schema = Arc::new(
            JoinSchema::new(
                vec!["A".into(), "B".into()],
                vec![JoinEdge::parse("A.x", "B.x")],
                "A",
            )
            .unwrap(),
        );
        let db = Arc::new(db);
        let layout = Arc::new(WideLayout::new(&db, &schema));
        let sampler = Arc::new(JoinSampler::new(db, schema));
        (sampler, layout)
    }

    #[test]
    fn pool_batches_are_deterministic_per_index() {
        let (sampler, layout) = tiny();
        let pool = SamplerPool::new(sampler, layout, 3, 11, None);
        let a = pool.submit_indexed(4, 100).wait().into_wide();
        let b = pool.submit_indexed(4, 100).wait().into_wide();
        assert_eq!(a, b);
        let c = pool.submit_indexed(5, 100).wait().into_wide();
        assert_ne!(a, c, "distinct batch indices must give distinct batches");
    }

    #[test]
    fn pool_matches_legacy_wrapper_at_batch_zero() {
        let (sampler, layout) = tiny();
        for threads in [1usize, 2, 3, 8] {
            for n in [0usize, 1, 3, 64, 257] {
                let pool = SamplerPool::new(sampler.clone(), layout.clone(), threads, 9, None);
                let pooled = pool.submit_indexed(0, n).wait().into_wide();
                let legacy = sample_wide_batch_parallel(&sampler, &layout, n, threads, 9);
                assert_eq!(pooled, legacy, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn in_flight_depth_does_not_change_results() {
        let (sampler, layout) = tiny();
        // Serial: submit, wait, submit, wait ...
        let pool = SamplerPool::new(sampler.clone(), layout.clone(), 2, 21, None);
        let serial: Vec<_> = (0..6u64)
            .map(|b| pool.submit_indexed(b, 33).wait().into_wide())
            .collect();
        // Pipelined: all six in flight at once, waited in order.
        let pool2 = SamplerPool::new(sampler, layout, 2, 21, None);
        let tickets: Vec<_> = (0..6u64).map(|b| pool2.submit_indexed(b, 33)).collect();
        let pipelined: Vec<_> = tickets.into_iter().map(|t| t.wait().into_wide()).collect();
        assert_eq!(serial, pipelined);
    }

    #[test]
    fn tickets_carry_their_batch_index() {
        let (sampler, layout) = tiny();
        let pool = SamplerPool::new(sampler, layout, 2, 3, None);
        let t0 = pool.submit_indexed(0, 10);
        let t1 = pool.submit_indexed(1, 10);
        assert_eq!(t0.batch_index(), 0);
        assert_eq!(t1.batch_index(), 1);
        assert_ne!(t0.wait().into_wide(), t1.wait().into_wide());
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn encoder_runs_inside_workers() {
        let (sampler, layout) = tiny();
        let width = layout.len();
        // A stand-in encoder: row -> [row length] per row.
        let encoder: BatchEncoder =
            Arc::new(move |rows| rows.iter().map(|r| vec![r.len() as u32]).collect());
        let pool = SamplerPool::new(sampler, layout, 3, 5, Some(encoder));
        let tokens = pool.submit_indexed(0, 50).wait().into_encoded();
        assert_eq!(tokens.len(), 50);
        assert!(tokens.iter().all(|t| t == &vec![width as u32]));
    }

    #[test]
    #[should_panic(expected = "built with an encoder")]
    fn wide_unwrap_of_encoded_batch_panics() {
        let (sampler, layout) = tiny();
        let encoder: BatchEncoder = Arc::new(|rows| rows.iter().map(|_| vec![0]).collect());
        let pool = SamplerPool::new(sampler, layout, 1, 5, Some(encoder));
        pool.submit_indexed(0, 2).wait().into_wide();
    }

    #[test]
    fn tickets_survive_pool_shutdown() {
        let (sampler, layout) = tiny();
        let pool = SamplerPool::new(sampler.clone(), layout.clone(), 2, 17, None);
        let expect = pool.submit_indexed(0, 40).wait().into_wide();
        let ticket = pool.submit_indexed(0, 40);
        drop(pool); // joins workers; queued job must be drained first
        assert_eq!(ticket.wait().into_wide(), expect);
    }

    #[test]
    fn dropping_unwaited_tickets_does_not_hang_shutdown() {
        let (sampler, layout) = tiny();
        let pool = SamplerPool::new(sampler, layout, 4, 1, None);
        for b in 0..8u64 {
            drop(pool.submit_indexed(b, 16));
        }
        drop(pool); // must not deadlock or panic
    }

    #[test]
    fn zero_and_tiny_batches() {
        let (sampler, layout) = tiny();
        let pool = SamplerPool::new(sampler, layout, 8, 2, None);
        assert!(pool.submit_indexed(0, 0).wait().is_empty());
        let batch = pool.submit_indexed(0, 3).wait();
        assert_eq!(batch.len(), 3);
        let rows = batch.into_wide();
        for row in &rows {
            assert!(!row.is_empty());
        }
    }
}
