//! Deterministic derivation of per-worker PRNG stream seeds.
//!
//! Every sampling thread needs its own independent RNG stream, and the streams must be a
//! pure function of `(seed, batch_index, worker_index)` so that a training run is
//! reproducible regardless of how batches are scheduled across a worker pool.
//!
//! The previous scheme derived thread seeds as `seed ^ C·(t+1)` while the trainer advanced
//! its per-batch seed by adding the same constant `C`, so seeds across `(batch, worker)`
//! pairs were linearly related: batch `b`, worker `t` and batch `b+1`, worker `t-1` could
//! collide outright, and even non-colliding seeds differed by structured low-entropy
//! deltas.  This module replaces it with a SplitMix64-style finalizer applied to each
//! component in sequence, which decorrelates the streams.

/// The SplitMix64 output mix (Stafford's Mix13 finalizer): a bijection on `u64` that
/// avalanche-mixes its input.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Golden-ratio increment used by SplitMix64 to separate consecutive states.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the RNG seed of worker `worker_index` for batch `batch_index` of the stream
/// rooted at `seed`.
///
/// Properties relied on by the sampler pool and the trainer:
///
/// * pure function of its three arguments (no hidden state), so any scheduling of the
///   `(batch, worker)` grid over threads reproduces the same streams,
/// * each argument passes through a full avalanche mix before the next is absorbed, so the
///   linear relations of the old `xor`/`add` scheme cannot produce collisions across
///   adjacent batches and workers.
#[inline]
pub fn derive_stream_seed(seed: u64, batch_index: u64, worker_index: u64) -> u64 {
    let mut z = splitmix64_mix(seed.wrapping_add(GOLDEN_GAMMA));
    z = splitmix64_mix(z ^ batch_index.wrapping_add(GOLDEN_GAMMA));
    splitmix64_mix(z ^ worker_index.wrapping_add(GOLDEN_GAMMA))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn distinct_over_batch_worker_grid() {
        // Regression for the old `seed ^ C*(t+1)` / `seed += C` scheme: every (batch,
        // worker) pair must get a distinct seed over a large grid, for several roots.
        for root in [0u64, 1, 42, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let mut seen = HashSet::new();
            for batch in 0..512u64 {
                for worker in 0..32u64 {
                    assert!(
                        seen.insert(derive_stream_seed(root, batch, worker)),
                        "collision at root={root} batch={batch} worker={worker}"
                    );
                }
            }
        }
    }

    #[test]
    fn old_scheme_collides_but_new_does_not() {
        // The concrete failure mode: under the old derivation, batch seeds advance by
        // GOLDEN_GAMMA while thread seeds xor multiples of it, so (batch b, thread t)
        // and (batch b', thread t') could share a stream.  Demonstrate the old collision
        // and assert the new scheme separates the same pair.
        let seed = 42u64;
        let old = |batch: u64, t: u64| {
            let batch_seed = seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(batch + 1));
            batch_seed ^ GOLDEN_GAMMA.wrapping_mul(t + 1)
        };
        // Old: thread 0 never mixes (xor C·1 vs add C) — adjacent batches' thread seeds
        // overlap: batch b thread t == batch b+? thread t'? Exhibit one concrete equality.
        let mut old_seen = std::collections::HashMap::new();
        let mut old_collision = None;
        'outer: for batch in 0..64u64 {
            for t in 0..8u64 {
                if let Some(prev) = old_seen.insert(old(batch, t), (batch, t)) {
                    old_collision = Some((prev, (batch, t)));
                    break 'outer;
                }
            }
        }
        let ((b1, t1), (b2, t2)) = old_collision.expect("old scheme should collide");
        assert_ne!((b1, t1), (b2, t2));
        assert_ne!(
            derive_stream_seed(seed, b1, t1),
            derive_stream_seed(seed, b2, t2),
            "new scheme must separate the pair that collided under the old scheme"
        );
    }

    #[test]
    fn different_roots_give_different_streams() {
        let a = derive_stream_seed(1, 0, 0);
        let b = derive_stream_seed(2, 0, 0);
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(derive_stream_seed(7, 3, 1), derive_stream_seed(7, 3, 1));
    }

    #[test]
    fn mix_is_a_bijection_probe() {
        // Not a proof, but distinct inputs in a window must map to distinct outputs.
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64_mix(i)));
        }
    }
}
