//! The "wide tuple" layout of the full outer join, including virtual columns.
//!
//! NeuroCard's autoregressive model is trained over a flat tuple containing every column of
//! every table in the schema, plus two kinds of *virtual columns* the sampler appends
//! on-the-fly (paper §6):
//!
//! * an **indicator** `1_T` per table — 1 when the sampled full-join row has a real partner
//!   in `T`, 0 when it holds `T`'s `⊥` tuple,
//! * a **fanout** `F_{T.k}` per join-key column — the number of times the row's key value
//!   occurs in `T.k` in the base table (1 for `⊥` rows and NULL keys, so downscaling by it
//!   is a no-op).
//!
//! The virtual columns are placed after all base columns, indicators before fanouts, which
//! the paper found to behave better than interleaving them (§6, "Ordering virtual columns").

use std::collections::HashMap;

use nc_schema::{ColumnRef, JoinSchema};
use nc_storage::{Database, Value};

use crate::sampler::JoinSample;

/// The role a wide-layout column plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// A base-table column that is not a join key.
    Content,
    /// A base-table column used as a join key by some edge.
    JoinKey,
    /// Virtual indicator column `1_T`.
    Indicator,
    /// Virtual fanout column `F_{T.k}`.
    Fanout,
}

/// One column of the wide layout.
#[derive(Debug, Clone)]
pub struct WideColumn {
    /// Owning table (for virtual columns, the table they describe).
    pub table: String,
    /// Base column name; for indicators this is `"__in"`, for fanouts the key column name.
    pub column: String,
    /// Display name, unique across the layout (e.g. `title.id`, `1(title)`, `F(cast_info.movie_id)`).
    pub name: String,
    /// Role of the column.
    pub kind: ColumnKind,
}

/// The full-join column layout shared by the sampler, the estimator and the baselines.
#[derive(Debug, Clone)]
pub struct WideLayout {
    columns: Vec<WideColumn>,
    /// Table order matching [`JoinSample::slots`].
    table_order: Vec<String>,
    /// `(table order index, base column name)` for each base column, parallel to `columns`.
    base_source: Vec<Option<(usize, String)>>,
    /// For indicator columns: the table order index they describe.
    indicator_source: Vec<Option<usize>>,
    /// For fanout columns: (table order index, key column, value -> occurrence count).
    fanout_source: Vec<Option<(usize, String, HashMap<Value, u64>)>>,
    by_name: HashMap<String, usize>,
    /// Whether [`WideLayout::materialize`] is available.  Layouts rebuilt from artifact
    /// metadata ([`WideLayout::from_metadata`]) lack the per-key fanout maps (a training
    /// concern); they serve inference, which only reads column metadata.
    materializable: bool,
}

impl WideLayout {
    /// Builds the layout for `schema` over `db` (precomputes the per-key fanout maps).
    pub fn new(db: &Database, schema: &JoinSchema) -> Self {
        Self::with_options(db, schema, true)
    }

    /// Builds the layout without the base join-key columns.
    ///
    /// The original NeuroCard configuration excludes raw join-key columns from the learned
    /// tuple: queries never filter them, the join semantics are fully carried by the
    /// indicator and fanout virtual columns, and the keys are the highest-cardinality —
    /// i.e. hardest to learn and most expensive to embed — columns of the schema.
    pub fn without_join_keys(db: &Database, schema: &JoinSchema) -> Self {
        Self::with_options(db, schema, false)
    }

    /// Builds the layout, optionally including the base join-key columns.
    pub fn with_options(db: &Database, schema: &JoinSchema, include_join_keys: bool) -> Self {
        let table_order: Vec<String> = schema.bfs_order().to_vec();
        let mut columns = Vec::new();
        let mut base_source = Vec::new();
        let mut indicator_source = Vec::new();
        let mut fanout_source = Vec::new();

        // 1. Base columns of every table, BFS order, declaration order within a table.
        for (ti, tname) in table_order.iter().enumerate() {
            let table = db.expect_table(tname);
            let join_keys = schema.join_key_columns(tname);
            for col in table.columns() {
                let kind = if join_keys.iter().any(|k| k == col.name()) {
                    ColumnKind::JoinKey
                } else {
                    ColumnKind::Content
                };
                if kind == ColumnKind::JoinKey && !include_join_keys {
                    continue;
                }
                columns.push(WideColumn {
                    table: tname.clone(),
                    column: col.name().to_string(),
                    name: format!("{tname}.{}", col.name()),
                    kind,
                });
                base_source.push(Some((ti, col.name().to_string())));
                indicator_source.push(None);
                fanout_source.push(None);
            }
        }

        // 2. Indicator columns, one per table.
        for (ti, tname) in table_order.iter().enumerate() {
            columns.push(WideColumn {
                table: tname.clone(),
                column: "__in".to_string(),
                name: format!("1({tname})"),
                kind: ColumnKind::Indicator,
            });
            base_source.push(None);
            indicator_source.push(Some(ti));
            fanout_source.push(None);
        }

        // 3. Fanout columns, one per join-key column reference.
        for key in schema.all_join_keys() {
            let ti = table_order
                .iter()
                .position(|t| *t == key.table)
                .expect("join key table is in the schema");
            let counts = db
                .expect_table(&key.table)
                .column(&key.column)
                .unwrap_or_else(|| panic!("missing join key column {key}"))
                .value_counts();
            columns.push(WideColumn {
                table: key.table.clone(),
                column: key.column.clone(),
                name: format!("F({key})"),
                kind: ColumnKind::Fanout,
            });
            base_source.push(None);
            indicator_source.push(None);
            fanout_source.push(Some((ti, key.column.clone(), counts)));
        }

        let by_name = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();

        WideLayout {
            columns,
            table_order,
            base_source,
            indicator_source,
            fanout_source,
            by_name,
            materializable: true,
        }
    }

    /// Rebuilds a layout from persisted column metadata alone (no [`Database`]).
    ///
    /// This is the model-artifact load path: inference needs the column list, name index
    /// and table order, but not the per-key fanout maps (those exist only to materialise
    /// *training* rows).  The returned layout therefore reports
    /// [`WideLayout::is_materializable`]` == false` and panics if asked to materialise.
    pub fn from_metadata(
        columns: Vec<WideColumn>,
        table_order: Vec<String>,
    ) -> Result<Self, String> {
        let mut by_name = HashMap::with_capacity(columns.len());
        let mut base_source = Vec::with_capacity(columns.len());
        let mut indicator_source = Vec::with_capacity(columns.len());
        let mut fanout_source = Vec::with_capacity(columns.len());
        let table_index = |t: &str| {
            table_order
                .iter()
                .position(|name| name == t)
                .ok_or_else(|| format!("column table {t:?} is not in the table order"))
        };
        for (i, col) in columns.iter().enumerate() {
            if by_name.insert(col.name.clone(), i).is_some() {
                return Err(format!("duplicate column name {:?}", col.name));
            }
            let ti = table_index(&col.table)?;
            match col.kind {
                ColumnKind::Content | ColumnKind::JoinKey => {
                    base_source.push(Some((ti, col.column.clone())));
                    indicator_source.push(None);
                    fanout_source.push(None);
                }
                ColumnKind::Indicator => {
                    base_source.push(None);
                    indicator_source.push(Some(ti));
                    fanout_source.push(None);
                }
                ColumnKind::Fanout => {
                    base_source.push(None);
                    indicator_source.push(None);
                    fanout_source.push(None);
                }
            }
        }
        Ok(WideLayout {
            columns,
            table_order,
            base_source,
            indicator_source,
            fanout_source,
            by_name,
            materializable: false,
        })
    }

    /// Whether this layout can materialise sampled rows (false for layouts rebuilt from
    /// artifact metadata, which drop the training-only fanout maps).
    pub fn is_materializable(&self) -> bool {
        self.materializable
    }

    /// All columns in layout order.
    pub fn columns(&self) -> &[WideColumn] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the layout is empty (never for a valid schema).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Table order matching [`JoinSample::slots`].
    pub fn table_order(&self) -> &[String] {
        &self.table_order
    }

    /// Index of the base column `table.column`, if present.
    pub fn index_of(&self, table: &str, column: &str) -> Option<usize> {
        self.by_name.get(&format!("{table}.{column}")).copied()
    }

    /// Index of the indicator column of `table`, if present.
    pub fn indicator_index(&self, table: &str) -> Option<usize> {
        self.by_name.get(&format!("1({table})")).copied()
    }

    /// Index of the fanout column of join key `key`, if present.
    pub fn fanout_index(&self, key: &ColumnRef) -> Option<usize> {
        self.by_name.get(&format!("F({key})")).copied()
    }

    /// Materialises a sampled full-join row into the wide layout.
    ///
    /// Panics on metadata-only layouts (see [`WideLayout::from_metadata`]): they have no
    /// fanout maps, and materialisation is a training-path operation anyway.
    pub fn materialize(&self, db: &Database, sample: &JoinSample) -> Vec<Value> {
        assert!(
            self.materializable,
            "this layout was rebuilt from artifact metadata and cannot materialise rows \
             (train against a live database instead)"
        );
        assert_eq!(
            sample.slots.len(),
            self.table_order.len(),
            "sample arity must match the layout's table order"
        );
        let tables: Vec<&std::sync::Arc<nc_storage::Table>> = self
            .table_order
            .iter()
            .map(|t| db.expect_table(t))
            .collect();
        let mut out = Vec::with_capacity(self.columns.len());
        for i in 0..self.columns.len() {
            if let Some((ti, col)) = &self.base_source[i] {
                let v = match sample.slots[*ti] {
                    Some(row) => tables[*ti].value(col, row),
                    None => Value::Null,
                };
                out.push(v);
            } else if let Some(ti) = self.indicator_source[i] {
                out.push(Value::Int(if sample.slots[ti].is_some() { 1 } else { 0 }));
            } else if let Some((ti, col, counts)) = &self.fanout_source[i] {
                let fanout = match sample.slots[*ti] {
                    Some(row) => {
                        let key = tables[*ti].value(col, row);
                        if key.is_null() {
                            1
                        } else {
                            counts.get(&key).copied().unwrap_or(1).max(1)
                        }
                    }
                    None => 1,
                };
                out.push(Value::Int(fanout as i64));
            } else {
                unreachable!("every layout column has exactly one source");
            }
        }
        out
    }

    /// Materialises many samples.
    pub fn materialize_batch(&self, db: &Database, samples: &[JoinSample]) -> Vec<Vec<Value>> {
        samples.iter().map(|s| self.materialize(db, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::JoinSampler;
    use nc_schema::JoinEdge;
    use nc_storage::TableBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn figure4() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        a.push_row(vec![Value::Int(2)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "y"]);
        b.push_row(vec![Value::Int(1), Value::from("a")]);
        b.push_row(vec![Value::Int(2), Value::from("b")]);
        b.push_row(vec![Value::Int(2), Value::from("c")]);
        db.add_table(b.finish());
        let mut c = TableBuilder::new("C", &["y"]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("d")]);
        db.add_table(c.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn layout_structure_matches_figure4c() {
        let (db, schema) = figure4();
        let layout = WideLayout::new(&db, &schema);
        // Base columns: A.x, B.x, B.y, C.y → 4; indicators → 3; fanouts (A.x, B.x, B.y,
        // C.y) → 4.  Total 11.
        assert_eq!(layout.len(), 11);
        assert!(!layout.is_empty());
        assert_eq!(layout.table_order(), &["A", "B", "C"]);
        assert_eq!(layout.index_of("A", "x"), Some(0));
        assert!(layout.indicator_index("A").is_some());
        assert!(layout.fanout_index(&ColumnRef::parse("B.x")).is_some());
        assert!(layout.fanout_index(&ColumnRef::parse("Z.z")).is_none());
        let kinds: Vec<ColumnKind> = layout.columns().iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == ColumnKind::Indicator)
                .count(),
            3
        );
        assert_eq!(
            kinds.iter().filter(|k| **k == ColumnKind::Fanout).count(),
            4
        );
        // All base columns of this schema happen to be join keys.
        assert_eq!(
            kinds.iter().filter(|k| **k == ColumnKind::JoinKey).count(),
            4
        );
    }

    #[test]
    fn materialized_rows_match_figure4c() {
        let (db, schema) = figure4();
        let layout = WideLayout::new(&db, &schema);
        // Row (A.x=2, B=(2,c), C=row 0 'c') from Figure 4c:
        // fanouts F(B.x)=2 (value 2 appears twice in B.x), F(C.y)=2 ('c' appears twice).
        let sample = JoinSample {
            slots: vec![Some(1), Some(2), Some(0)],
        };
        let row = layout.materialize(&db, &sample);
        assert_eq!(row[layout.index_of("A", "x").unwrap()], Value::Int(2));
        assert_eq!(row[layout.index_of("B", "y").unwrap()], Value::from("c"));
        assert_eq!(row[layout.indicator_index("A").unwrap()], Value::Int(1));
        assert_eq!(row[layout.indicator_index("C").unwrap()], Value::Int(1));
        assert_eq!(
            row[layout.fanout_index(&ColumnRef::parse("B.x")).unwrap()],
            Value::Int(2)
        );
        assert_eq!(
            row[layout.fanout_index(&ColumnRef::parse("C.y")).unwrap()],
            Value::Int(2)
        );
        assert_eq!(
            row[layout.fanout_index(&ColumnRef::parse("A.x")).unwrap()],
            Value::Int(1)
        );

        // The unmatched-C row (⊥, ⊥, 'd'): indicators 0,0,1; all fanouts 1; base values NULL.
        let sample = JoinSample {
            slots: vec![None, None, Some(2)],
        };
        let row = layout.materialize(&db, &sample);
        assert_eq!(row[layout.index_of("A", "x").unwrap()], Value::Null);
        assert_eq!(row[layout.index_of("B", "y").unwrap()], Value::Null);
        assert_eq!(row[layout.index_of("C", "y").unwrap()], Value::from("d"));
        assert_eq!(row[layout.indicator_index("A").unwrap()], Value::Int(0));
        assert_eq!(row[layout.indicator_index("B").unwrap()], Value::Int(0));
        assert_eq!(row[layout.indicator_index("C").unwrap()], Value::Int(1));
        assert_eq!(
            row[layout.fanout_index(&ColumnRef::parse("B.x")).unwrap()],
            Value::Int(1)
        );
    }

    #[test]
    fn batch_materialization_from_sampler() {
        let (db, schema) = figure4();
        let layout = WideLayout::new(&db, &schema);
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sampler.sample_many(&mut rng, 64);
        let rows = layout.materialize_batch(&db, &samples);
        assert_eq!(rows.len(), 64);
        for r in &rows {
            assert_eq!(r.len(), layout.len());
            // Indicators are always 0/1 and at least one is 1.
            let mut any = false;
            for t in ["A", "B", "C"] {
                let v = &r[layout.indicator_index(t).unwrap()];
                assert!(*v == Value::Int(0) || *v == Value::Int(1));
                any |= *v == Value::Int(1);
            }
            assert!(any);
        }
    }

    #[test]
    fn metadata_round_trip_preserves_lookup_structure() {
        let (db, schema) = figure4();
        let layout = WideLayout::new(&db, &schema);
        assert!(layout.is_materializable());
        let rebuilt =
            WideLayout::from_metadata(layout.columns().to_vec(), layout.table_order().to_vec())
                .unwrap();
        assert!(!rebuilt.is_materializable());
        assert_eq!(rebuilt.len(), layout.len());
        assert_eq!(rebuilt.table_order(), layout.table_order());
        for c in layout.columns() {
            assert_eq!(
                rebuilt.by_name.get(&c.name),
                layout.by_name.get(&c.name),
                "index of {} must survive the round trip",
                c.name
            );
        }
        assert_eq!(rebuilt.index_of("A", "x"), layout.index_of("A", "x"));
        assert_eq!(rebuilt.indicator_index("B"), layout.indicator_index("B"));
        assert_eq!(
            rebuilt.fanout_index(&ColumnRef::parse("C.y")),
            layout.fanout_index(&ColumnRef::parse("C.y"))
        );
        // Inconsistent metadata is reported, not panicked on.
        assert!(WideLayout::from_metadata(layout.columns().to_vec(), vec!["A".into()]).is_err());
        let mut dup = layout.columns().to_vec();
        let clone = dup[0].clone();
        dup.push(clone);
        assert!(WideLayout::from_metadata(dup, layout.table_order().to_vec()).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot materialise")]
    fn metadata_layout_refuses_to_materialize() {
        let (db, schema) = figure4();
        let layout = WideLayout::new(&db, &schema);
        let rebuilt =
            WideLayout::from_metadata(layout.columns().to_vec(), layout.table_order().to_vec())
                .unwrap();
        rebuilt.materialize(
            &db,
            &JoinSample {
                slots: vec![Some(0), Some(0), Some(0)],
            },
        );
    }

    #[test]
    #[should_panic(expected = "arity must match")]
    fn wrong_arity_sample_panics() {
        let (db, schema) = figure4();
        let layout = WideLayout::new(&db, &schema);
        layout.materialize(
            &db,
            &JoinSample {
                slots: vec![Some(0)],
            },
        );
    }
}
