//! Exact Weight join counts (paper §4.1).
//!
//! For a join tree `T₁..T_N` rooted at `T₁`, the join count of tuple `t ∈ Tᵢ` is
//!
//! ```text
//! wᵢ(t) = Π_{Tⱼ ∈ children(Tᵢ)}  Σ_{t' ∈ t ⋉ Tⱼ} wⱼ(t')
//! ```
//!
//! i.e. the number of rows of the full join of `Tᵢ`'s subtree that contain `t`.  Full-outer
//! semantics add a virtual `⊥` tuple per table: a parent tuple with no match in a child
//! joins the child's `⊥`; the parent's `⊥` joins every child tuple whose key is unmatched in
//! the parent (plus the child's `⊥`), and the all-`⊥` assignment is excluded.
//!
//! Everything is computed bottom-up in one pass over each table (`O(Σ|Tᵢ|)`), which is the
//! "13 seconds for JOB-light / 4 minutes for JOB-M" preparation step of the paper.

use std::collections::HashMap;
use std::sync::Arc;

use nc_schema::JoinSchema;
use nc_storage::{Database, RowId, Value};

/// A composite join-key value (one [`Value`] per column of a multi-key join condition).
pub type CompositeKey = Vec<Value>;

/// Join-count bookkeeping for one table.
#[derive(Debug, Clone)]
pub struct TableCounts {
    /// Table name.
    pub table: String,
    /// `w(t)` for every base row.
    pub row_weights: Vec<u128>,
    /// `w(⊥)` for this table's virtual NULL tuple.
    pub null_weight: u128,
    /// Rows grouped by the composite key on the edge towards the *parent* (empty for the
    /// root table).  Keys containing NULL are excluded (they can never match a parent).
    pub key_index: HashMap<CompositeKey, Vec<RowId>>,
    /// Total weight per parent-edge key: `Σ row_weights` over `key_index[key]`.
    pub key_weight: HashMap<CompositeKey, u128>,
    /// Rows whose parent-edge key has no match in the parent table (or contains NULL);
    /// these are the candidates when the parent slot is `⊥`.
    pub unmatched_rows: Vec<RowId>,
    /// Total weight of `unmatched_rows`.
    pub unmatched_weight: u128,
}

/// Join counts for every table of a schema.
#[derive(Debug, Clone)]
pub struct JoinCounts {
    tables: HashMap<String, TableCounts>,
    total_full_join_rows: u128,
    order: Vec<String>,
}

impl JoinCounts {
    /// Computes the join counts for `schema` over `db` by bottom-up dynamic programming.
    pub fn compute(db: &Database, schema: &JoinSchema) -> Self {
        let order: Vec<String> = schema.bfs_order().to_vec();
        let mut computed: HashMap<String, TableCounts> = HashMap::new();

        // Bottom-up: reverse BFS order guarantees children are computed before parents.
        for table_name in order.iter().rev() {
            let table = db.expect_table(table_name);
            let n = table.num_rows();

            // --- 1. row weights: product over children of matched (or ⊥) weights -------
            let mut row_weights = vec![1u128; n];
            let mut null_weight = 1u128;
            for child_name in schema.children(table_name) {
                let child = computed
                    .get(child_name)
                    .expect("children computed before parents");
                let edges = schema.edges_between(table_name, child_name);
                let my_cols: Vec<&nc_storage::Column> = edges
                    .iter()
                    .map(|e| {
                        let col = &e.endpoint(table_name).expect("edge touches table").column;
                        table
                            .column(col)
                            .unwrap_or_else(|| panic!("missing join column {table_name}.{col}"))
                    })
                    .collect();
                for (row, w) in row_weights.iter_mut().enumerate() {
                    let key: CompositeKey = my_cols.iter().map(|c| c.value(row)).collect();
                    let factor = if key.iter().any(Value::is_null) {
                        child.null_weight
                    } else {
                        match child.key_weight.get(&key) {
                            Some(&kw) if kw > 0 => kw,
                            _ => child.null_weight,
                        }
                    };
                    *w = w.saturating_mul(factor);
                }
                null_weight = null_weight
                    .saturating_mul(child.unmatched_weight.saturating_add(child.null_weight));
            }

            // --- 2. parent-edge grouping (for the later top-down sampling pass) --------
            let mut key_index: HashMap<CompositeKey, Vec<RowId>> = HashMap::new();
            let mut key_weight: HashMap<CompositeKey, u128> = HashMap::new();
            let mut unmatched_rows = Vec::new();
            let mut unmatched_weight = 0u128;
            if let Some(parent_name) = schema.parent(table_name) {
                let parent = db.expect_table(parent_name);
                let edges = schema.edges_between(parent_name, table_name);
                let my_cols: Vec<&nc_storage::Column> = edges
                    .iter()
                    .map(|e| {
                        let col = &e.endpoint(table_name).expect("edge touches table").column;
                        table
                            .column(col)
                            .unwrap_or_else(|| panic!("missing join column {table_name}.{col}"))
                    })
                    .collect();
                let parent_cols: Vec<&nc_storage::Column> = edges
                    .iter()
                    .map(|e| {
                        let col = &e.endpoint(parent_name).expect("edge touches parent").column;
                        parent
                            .column(col)
                            .unwrap_or_else(|| panic!("missing join column {parent_name}.{col}"))
                    })
                    .collect();
                // Set of parent keys, to classify unmatched child rows.
                let mut parent_keys: std::collections::HashSet<CompositeKey> =
                    std::collections::HashSet::new();
                for prow in 0..parent.num_rows() {
                    let key: CompositeKey = parent_cols.iter().map(|c| c.value(prow)).collect();
                    if !key.iter().any(Value::is_null) {
                        parent_keys.insert(key);
                    }
                }
                for row in 0..n {
                    let key: CompositeKey = my_cols.iter().map(|c| c.value(row)).collect();
                    let w = row_weights[row];
                    if key.iter().any(Value::is_null) {
                        unmatched_rows.push(row as RowId);
                        unmatched_weight = unmatched_weight.saturating_add(w);
                        continue;
                    }
                    if !parent_keys.contains(&key) {
                        unmatched_rows.push(row as RowId);
                        unmatched_weight = unmatched_weight.saturating_add(w);
                    }
                    key_index.entry(key.clone()).or_default().push(row as RowId);
                    *key_weight.entry(key).or_insert(0) += w;
                }
            }

            computed.insert(
                table_name.clone(),
                TableCounts {
                    table: table_name.clone(),
                    row_weights,
                    null_weight,
                    key_index,
                    key_weight,
                    unmatched_rows,
                    unmatched_weight,
                },
            );
        }

        // Total size of the augmented full join: all root assignments minus the excluded
        // all-⊥ combination.
        let root = computed.get(schema.root()).expect("root computed");
        let total = root
            .row_weights
            .iter()
            .fold(0u128, |acc, w| acc.saturating_add(*w))
            .saturating_add(root.null_weight)
            .saturating_sub(1);

        JoinCounts {
            tables: computed,
            total_full_join_rows: total,
            order,
        }
    }

    /// Join-count bookkeeping for one table.
    pub fn table(&self, name: &str) -> &TableCounts {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no join counts for table {name:?}"))
    }

    /// `|J|`: the number of rows of the augmented full outer join (the normalising constant
    /// that converts selectivities into cardinalities, paper §4.1).
    pub fn full_join_rows(&self) -> u128 {
        self.total_full_join_rows
    }

    /// Tables in the BFS order used during sampling.
    pub fn order(&self) -> &[String] {
        &self.order
    }

    /// Convenience: computes the counts and wraps them in an [`Arc`].
    pub fn compute_shared(db: &Database, schema: &JoinSchema) -> Arc<Self> {
        Arc::new(Self::compute(db, schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::JoinEdge;
    use nc_storage::TableBuilder;

    /// The paper's Figure 4 data.
    fn figure4_db() -> (Database, JoinSchema) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        a.push_row(vec![Value::Int(2)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "y"]);
        b.push_row(vec![Value::Int(1), Value::from("a")]);
        b.push_row(vec![Value::Int(2), Value::from("b")]);
        b.push_row(vec![Value::Int(2), Value::from("c")]);
        db.add_table(b.finish());
        let mut c = TableBuilder::new("C", &["y"]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("d")]);
        db.add_table(c.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
            "A",
        )
        .unwrap();
        (db, schema)
    }

    #[test]
    fn figure4_join_counts_match_paper() {
        let (db, schema) = figure4_db();
        let counts = JoinCounts::compute(&db, &schema);
        // Figure 4b: A.x = 1 → 1, A.x = 2 → 3.
        let a = counts.table("A");
        assert_eq!(a.row_weights, vec![1, 3]);
        // A.⊥ covers the chains reachable once A is NULL: (⊥,⊥,d) and the excluded all-⊥.
        assert_eq!(a.null_weight, 2);
        // B: (1,a) → 1, (2,b) → 1, (2,c) → 2; B.⊥ covers (…,⊥,d) and (…,⊥,⊥).
        let b = counts.table("B");
        assert_eq!(b.row_weights, vec![1, 1, 2]);
        assert_eq!(b.null_weight, 2);
        // C: every row → 1; C.⊥ → 1 (a leaf's ⊥ is a single assignment).
        let c = counts.table("C");
        assert_eq!(c.row_weights, vec![1, 1, 1]);
        assert_eq!(c.null_weight, 1);
        // |J| = (1 + 3) + (2 − 1 for the excluded all-⊥ assignment) = 5, matching the five
        // rows of Figure 4c.
        assert_eq!(counts.full_join_rows(), 5);
    }

    #[test]
    fn figure4_matches_bruteforce_enumeration() {
        let (db, schema) = figure4_db();
        let counts = JoinCounts::compute(&db, &schema);
        let rows = nc_exec::enumerate_full_join(&db, &schema);
        assert_eq!(counts.full_join_rows(), rows.len() as u128);
        // Per-root-row counts agree with the enumeration.
        let a = counts.table("A");
        for (row, w) in a.row_weights.iter().enumerate() {
            let observed = rows
                .iter()
                .filter(|r| r.row_of("A").flatten() == Some(row as u32))
                .count() as u128;
            assert_eq!(*w, observed, "root row {row}");
        }
    }

    #[test]
    fn unmatched_bookkeeping() {
        let (db, schema) = figure4_db();
        let counts = JoinCounts::compute(&db, &schema);
        // C's row 'd' (row id 2) has no partner in B.
        let c = counts.table("C");
        assert_eq!(c.unmatched_rows, vec![2]);
        assert_eq!(c.unmatched_weight, 1);
        // B has no unmatched rows w.r.t. A.
        let b = counts.table("B");
        assert!(b.unmatched_rows.is_empty());
        assert_eq!(b.unmatched_weight, 0);
        // Key groupings on the parent edge.
        assert_eq!(b.key_index[&vec![Value::Int(2)]].len(), 2);
        assert_eq!(b.key_weight[&vec![Value::Int(2)]], 3);
        assert_eq!(b.key_weight[&vec![Value::Int(1)]], 1);
    }

    #[test]
    fn star_schema_counts_match_enumeration() {
        // A star: R(k) with two children S(k), T(k); exercises the multi-child ⊥ product.
        let mut db = Database::new();
        let mut r = TableBuilder::new("R", &["k"]);
        for k in [1, 2] {
            r.push_row(vec![Value::Int(k)]);
        }
        db.add_table(r.finish());
        let mut s = TableBuilder::new("S", &["k"]);
        for k in [1, 1, 3] {
            s.push_row(vec![Value::Int(k)]);
        }
        db.add_table(s.finish());
        let mut t = TableBuilder::new("T", &["k"]);
        for k in [2, 4, 4] {
            t.push_row(vec![Value::Int(k)]);
        }
        db.add_table(t.finish());
        let schema = JoinSchema::new(
            vec!["R".into(), "S".into(), "T".into()],
            vec![JoinEdge::parse("R.k", "S.k"), JoinEdge::parse("R.k", "T.k")],
            "R",
        )
        .unwrap();
        let counts = JoinCounts::compute(&db, &schema);
        let rows = nc_exec::enumerate_full_join(&db, &schema);
        assert_eq!(counts.full_join_rows(), rows.len() as u128);
    }

    #[test]
    fn composite_key_counts() {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "y"]);
        a.push_row(vec![Value::Int(1), Value::Int(10)]);
        a.push_row(vec![Value::Int(1), Value::Int(20)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "y"]);
        b.push_row(vec![Value::Int(1), Value::Int(10)]);
        b.push_row(vec![Value::Int(1), Value::Int(10)]);
        b.push_row(vec![Value::Int(1), Value::Int(30)]);
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("A.y", "B.y")],
            "A",
        )
        .unwrap();
        let counts = JoinCounts::compute(&db, &schema);
        assert_eq!(counts.table("A").row_weights, vec![2, 1]); // (1,20) joins B.⊥
        let rows = nc_exec::enumerate_full_join(&db, &schema);
        assert_eq!(counts.full_join_rows(), rows.len() as u128);
    }

    #[test]
    fn null_keys_go_to_null_branch() {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Null]);
        a.push_row(vec![Value::Int(1)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x"]);
        b.push_row(vec![Value::Int(1)]);
        b.push_row(vec![Value::Null]);
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        let counts = JoinCounts::compute(&db, &schema);
        let rows = nc_exec::enumerate_full_join(&db, &schema);
        assert_eq!(counts.full_join_rows(), rows.len() as u128);
        // The NULL-keyed B row is "unmatched" and reachable only under A.⊥.
        assert!(counts.table("B").unmatched_rows.contains(&1));
    }

    #[test]
    fn order_and_accessors() {
        let (db, schema) = figure4_db();
        let counts = JoinCounts::compute_shared(&db, &schema);
        assert_eq!(counts.order(), &["A", "B", "C"]);
        assert_eq!(counts.table("A").table, "A");
    }

    #[test]
    #[should_panic(expected = "no join counts")]
    fn unknown_table_panics() {
        let (db, schema) = figure4_db();
        JoinCounts::compute(&db, &schema).table("Z");
    }
}
