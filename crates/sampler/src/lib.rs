//! # nc-sampler
//!
//! The unbiased full-outer-join sampler of the paper (§4): the component that lets
//! NeuroCard learn the distribution of a join **without ever computing the join**.
//!
//! The requirements (paper §4, §4.2) are strict: every tuple of the (augmented) full outer
//! join `J` must be drawn i.i.d. with probability exactly `1/|J|`; anything weaker (IBJS,
//! Wander Join, reservoir sampling) biases the learned distribution.  NeuroCard implements
//! the *Exact Weight* algorithm of Zhao et al. (2018), adapted to full outer joins via
//! virtual `⊥` tuples:
//!
//! 1. [`join_counts`] — a bottom-up dynamic program computes, for every base tuple, the
//!    number of full-join rows it participates in within its subtree (`O(Σ|Tᵢ|)` time),
//! 2. [`sampler`] — a top-down pass samples one table at a time proportionally to those
//!    counts and gathers content columns through the storage indexes,
//! 3. [`wide`] — sampled assignments are materialised into "wide tuples" over the full-join
//!    column layout, including the paper's two kinds of *virtual columns*: per-table
//!    indicators `1_T` and per-join-key fanouts `F_{T.k}` (§6),
//! 4. [`pool`] — sampling is embarrassingly parallel; a persistent worker pool keeps
//!    long-lived threads fed over channels so the training loop can prefetch batches
//!    (Figure 7b).  [`parallel`] is the legacy one-shot wrapper over the pool,
//! 5. [`seed`] — deterministic SplitMix64 derivation of per-`(batch, worker)` RNG streams,
//! 6. [`biased`] — an intentionally *biased* IBJS-style sampler used only by the ablation
//!    study (Table 5, row A).

pub mod biased;
pub mod join_counts;
pub mod parallel;
pub mod pool;
pub mod sampler;
pub mod seed;
pub mod wide;

pub use biased::BiasedSampler;
pub use join_counts::JoinCounts;
pub use parallel::sample_wide_batch_parallel;
pub use pool::{BatchEncoder, BatchTicket, PoolBatch, SamplerPool};
pub use sampler::{JoinSample, JoinSampler};
pub use seed::derive_stream_seed;
pub use wide::{ColumnKind, WideColumn, WideLayout};
