//! Top-down weighted sampling from the full outer join (paper §4.1).

use std::sync::Arc;

use rand::Rng;

use nc_schema::JoinSchema;
use nc_storage::{Database, RowId, Value};

use crate::join_counts::{CompositeKey, JoinCounts};

/// One simple random sample from the augmented full outer join: for every schema table (in
/// BFS order) either a base-table row id or `None` (the table's virtual `⊥` tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSample {
    /// Per-table slot, aligned with [`JoinSampler::table_order`].
    pub slots: Vec<Option<RowId>>,
}

impl JoinSample {
    /// Whether the sample has a real partner in the table at position `idx`.
    pub fn has_partner(&self, idx: usize) -> bool {
        self.slots[idx].is_some()
    }
}

/// The Exact Weight join sampler: draws i.i.d. uniform samples of the full outer join
/// without materialising it.
#[derive(Debug, Clone)]
pub struct JoinSampler {
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
    counts: Arc<JoinCounts>,
    order: Vec<String>,
}

impl JoinSampler {
    /// Prepares a sampler: computes the join count tables for `schema` over `db`.
    pub fn new(db: Arc<Database>, schema: Arc<JoinSchema>) -> Self {
        let counts = JoinCounts::compute_shared(&db, &schema);
        Self::with_counts(db, schema, counts)
    }

    /// Builds a sampler reusing previously computed join counts.
    pub fn with_counts(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        counts: Arc<JoinCounts>,
    ) -> Self {
        let order = schema.bfs_order().to_vec();
        JoinSampler {
            db,
            schema,
            counts,
            order,
        }
    }

    /// The table order used by [`JoinSample::slots`].
    pub fn table_order(&self) -> &[String] {
        &self.order
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The join schema.
    pub fn schema(&self) -> &Arc<JoinSchema> {
        &self.schema
    }

    /// The join counts (shared, reusable across sampler clones and threads).
    pub fn counts(&self) -> &Arc<JoinCounts> {
        &self.counts
    }

    /// `|J|`, the number of rows of the augmented full outer join.
    pub fn full_join_rows(&self) -> u128 {
        self.counts.full_join_rows()
    }

    /// Draws one simple random sample (probability exactly `1/|J|` per full-join row).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> JoinSample {
        loop {
            let slots = self.sample_once(rng);
            // The all-⊥ assignment is not part of the full join; reject and redraw (its
            // unnormalised weight is exactly 1, so rejections are vanishingly rare).
            if slots.iter().any(|s| s.is_some()) {
                return JoinSample { slots };
            }
        }
    }

    /// Draws `n` samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<JoinSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    fn sample_once<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Option<RowId>> {
        let mut slots: Vec<Option<RowId>> = Vec::with_capacity(self.order.len());

        // Root: weighted choice among real rows and the ⊥ tuple.
        let root_name = &self.order[0];
        let root_counts = self.counts.table(root_name);
        let total: u128 = root_counts
            .row_weights
            .iter()
            .fold(0u128, |a, w| a.saturating_add(*w))
            .saturating_add(root_counts.null_weight);
        let slot = weighted_choice(rng, total, root_counts.null_weight, |i| {
            root_counts.row_weights[i]
        });
        slots.push(slot.map(|i| i as RowId));

        // Children in BFS order: the parent slot is always already sampled.
        for (idx, table_name) in self.order.iter().enumerate().skip(1) {
            let parent_name = self
                .schema
                .parent(table_name)
                .expect("non-root table has a parent");
            let parent_idx = self
                .order
                .iter()
                .position(|t| t == parent_name)
                .expect("parent sampled before child");
            let parent_slot = slots[parent_idx];
            let tc = self.counts.table(table_name);

            let slot = match parent_slot {
                Some(parent_row) => {
                    let key = self.parent_edge_key(parent_name, table_name, parent_row);
                    if key.iter().any(Value::is_null) {
                        None
                    } else {
                        match tc.key_index.get(&key) {
                            Some(rows) if !rows.is_empty() => {
                                let total = tc.key_weight[&key];
                                let pick = weighted_choice(rng, total, 0, |i| {
                                    tc.row_weights[rows[i] as usize]
                                });
                                pick.map(|i| rows[i])
                            }
                            _ => None,
                        }
                    }
                }
                None => {
                    // Parent is ⊥: choose among unmatched child rows and the child's ⊥.
                    let total = tc.unmatched_weight.saturating_add(tc.null_weight);
                    let pick = weighted_choice(rng, total, tc.null_weight, |i| {
                        tc.row_weights[tc.unmatched_rows[i] as usize]
                    });
                    pick.map(|i| tc.unmatched_rows[i])
                }
            };
            let _ = idx;
            slots.push(slot);
        }
        slots
    }

    /// The composite key of `parent_row` on the edge(s) between `parent` and `child`.
    fn parent_edge_key(&self, parent: &str, child: &str, parent_row: RowId) -> CompositeKey {
        let table = self.db.expect_table(parent);
        self.schema
            .edges_between(parent, child)
            .iter()
            .map(|e| {
                let col = &e.endpoint(parent).expect("edge touches parent").column;
                table.value(col, parent_row)
            })
            .collect()
    }
}

/// Weighted choice among `⊥` (weight `null_weight`, returned as `None`) and indexed items
/// `0..` whose weights are given by `weight_of` and sum to `total - null_weight`.
///
/// Returns `Some(index)` or `None` for the ⊥ option.  `total` must be positive.
fn weighted_choice<R: Rng + ?Sized>(
    rng: &mut R,
    total: u128,
    null_weight: u128,
    weight_of: impl Fn(usize) -> u128,
) -> Option<usize> {
    debug_assert!(total > 0, "cannot sample from an empty weight set");
    let mut ticket = rng.random_range(0..total);
    if ticket < null_weight {
        return None;
    }
    ticket -= null_weight;
    let mut i = 0usize;
    loop {
        let w = weight_of(i);
        if ticket < w {
            return Some(i);
        }
        ticket -= w;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::JoinEdge;
    use nc_storage::TableBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn figure4() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        a.push_row(vec![Value::Int(2)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "y"]);
        b.push_row(vec![Value::Int(1), Value::from("a")]);
        b.push_row(vec![Value::Int(2), Value::from("b")]);
        b.push_row(vec![Value::Int(2), Value::from("c")]);
        db.add_table(b.finish());
        let mut c = TableBuilder::new("C", &["y"]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("d")]);
        db.add_table(c.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn samples_are_uniform_over_the_full_join() {
        let (db, schema) = figure4();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        assert_eq!(sampler.full_join_rows(), 5);
        assert_eq!(sampler.table_order(), &["A", "B", "C"]);

        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000usize;
        let mut hist: HashMap<Vec<Option<RowId>>, usize> = HashMap::new();
        for _ in 0..n {
            let s = sampler.sample(&mut rng);
            *hist.entry(s.slots).or_insert(0) += 1;
        }
        // Exactly the 5 valid full-join rows appear.
        assert_eq!(hist.len(), 5);
        // Each appears with frequency ≈ 1/5 (uniform i.i.d.).
        for (slots, count) in &hist {
            let freq = *count as f64 / n as f64;
            assert!(
                (freq - 0.2).abs() < 0.02,
                "row {slots:?} frequency {freq} deviates from uniform"
            );
        }
        // The all-⊥ assignment never appears.
        assert!(!hist.contains_key(&vec![None, None, None]));
    }

    #[test]
    fn never_samples_nonexistent_pairings() {
        let (db, schema) = figure4();
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2_000 {
            let s = sampler.sample(&mut rng);
            // If A and B are both real, their x keys must agree.
            if let (Some(a), Some(b)) = (s.slots[0], s.slots[1]) {
                assert_eq!(
                    db.expect_table("A").value("x", a),
                    db.expect_table("B").value("x", b)
                );
            }
            // If B and C are both real, their y keys must agree.
            if let (Some(b), Some(c)) = (s.slots[1], s.slots[2]) {
                assert_eq!(
                    db.expect_table("B").value("y", b),
                    db.expect_table("C").value("y", c)
                );
            }
            assert!(s.slots.iter().any(|x| x.is_some()));
        }
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let (db, schema) = figure4();
        let sampler = JoinSampler::new(db, schema);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sampler.sample_many(&mut rng, 17).len(), 17);
        let s = sampler.sample(&mut rng);
        assert!(s.has_partner(0) || s.has_partner(1) || s.has_partner(2));
    }

    #[test]
    fn weighted_choice_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let weights = [3u128, 1, 6];
        let total: u128 = 10 + 2; // 2 = null weight
        let mut counts = [0usize; 4]; // [null, w0, w1, w2]
        for _ in 0..24_000 {
            match weighted_choice(&mut rng, total, 2, |i| weights[i]) {
                None => counts[0] += 1,
                Some(i) => counts[i + 1] += 1,
            }
        }
        let freq: Vec<f64> = counts.iter().map(|c| *c as f64 / 24_000.0).collect();
        assert!((freq[0] - 2.0 / 12.0).abs() < 0.02);
        assert!((freq[1] - 3.0 / 12.0).abs() < 0.02);
        assert!((freq[2] - 1.0 / 12.0).abs() < 0.02);
        assert!((freq[3] - 6.0 / 12.0).abs() < 0.02);
    }
}
