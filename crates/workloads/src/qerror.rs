//! The Q-error metric (§7.1) and its quantile summaries.

use serde::{Deserialize, Serialize};

/// Multiplicative error between an estimate and the truth; both are lower-bounded by 1, so
/// the minimum attainable Q-error is 1.
///
/// A non-finite estimate or truth (NaN or ±∞) scores `f64::INFINITY`: `f64::max` returns
/// its non-NaN operand, so the old `estimate.max(1.0)` clamp silently mapped a NaN
/// estimate to 1.0 and let a broken estimator report a *perfect* Q-error.
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    if !estimate.is_finite() || !truth.is_finite() {
        return f64::INFINITY;
    }
    let e = estimate.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// Quantile summary of a set of Q-errors (the columns of the paper's result tables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of queries.
    pub count: usize,
    /// Median (p50).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum (p100).
    pub max: f64,
    /// Geometric mean (not reported by the paper, useful for quick comparisons).
    pub geometric_mean: f64,
}

impl ErrorSummary {
    /// Summarises a set of Q-errors.  Panics on an empty slice.
    pub fn from_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "cannot summarise zero errors");
        let mut sorted = errors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("Q-errors are never NaN"));
        let geometric_mean =
            (sorted.iter().map(|e| e.max(1.0).ln()).sum::<f64>() / sorted.len() as f64).exp();
        ErrorSummary {
            count: sorted.len(),
            median: quantile(&sorted, 0.50),
            p95: quantile(&sorted, 0.95),
            p99: quantile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
            geometric_mean,
        }
    }

    /// Convenience: compute the Q-errors of paired (estimate, truth) values and summarise.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let errors: Vec<f64> = pairs.iter().map(|(e, t)| q_error(*e, *t)).collect();
        Self::from_errors(&errors)
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:.2}  p95 {:.1}  p99 {:.1}  max {:.1}  (n={})",
            self.median, self.p95, self.p99, self.max, self.count
        )
    }
}

/// Quantile of an ascending-sorted slice using nearest-rank interpolation.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(1.0, 10.0), 10.0);
        // Both sides lower-bounded by 1.
        assert_eq!(q_error(0.001, 0.5), 1.0);
        assert_eq!(q_error(0.0, 7.0), 7.0);
        assert!(q_error(3.0, 7.0) >= 1.0);
    }

    #[test]
    fn summary_quantiles() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = ErrorSummary::from_errors(&errors);
        assert_eq!(s.count, 100);
        assert!((s.median - 50.5).abs() < 1.0);
        assert!((s.p95 - 95.0).abs() < 1.5);
        assert!((s.p99 - 99.0).abs() < 1.5);
        assert_eq!(s.max, 100.0);
        assert!(s.geometric_mean > 1.0 && s.geometric_mean < 100.0);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn from_pairs_matches_manual() {
        let pairs = vec![(10.0, 100.0), (100.0, 100.0), (1000.0, 100.0)];
        let s = ErrorSummary::from_pairs(&pairs);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.median, 10.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn quantile_edge_cases() {
        let v = vec![5.0];
        assert_eq!(quantile(&v, 0.0), 5.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        let v = vec![1.0, 2.0];
        assert_eq!(quantile(&v, 0.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "zero errors")]
    fn empty_errors_panic() {
        ErrorSummary::from_errors(&[]);
    }

    #[test]
    fn q_error_is_symmetric() {
        // Swapping estimate and truth never changes the Q-error, including when one or
        // both sides are clamped up to 1.
        let values = [0.0, 0.3, 1.0, 2.5, 10.0, 1e6];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    q_error(a, b),
                    q_error(b, a),
                    "q_error not symmetric for ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn zero_cardinality_is_clamped() {
        // An empty result (truth = 0) with an empty estimate is a perfect answer.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        // Estimating zero for a non-empty result scores as if the estimate were 1.
        assert_eq!(q_error(0.0, 50.0), 50.0);
        assert_eq!(q_error(50.0, 0.0), 50.0);
        // Sub-1 fractional estimates are clamped the same way.
        assert_eq!(q_error(0.25, 4.0), 4.0);
        assert_eq!(q_error(0.25, 0.75), 1.0);
    }

    #[test]
    fn non_finite_estimates_score_infinity() {
        // Regression: `f64::max` returns the non-NaN operand, so `NaN.max(1.0) == 1.0`
        // used to make a NaN-emitting estimator look perfect.
        assert_eq!(q_error(f64::NAN, 100.0), f64::INFINITY);
        assert_eq!(q_error(f64::INFINITY, 100.0), f64::INFINITY);
        assert_eq!(q_error(f64::NEG_INFINITY, 100.0), f64::INFINITY);
        // Broken truths are just as suspect.
        assert_eq!(q_error(100.0, f64::NAN), f64::INFINITY);
        assert_eq!(q_error(100.0, f64::INFINITY), f64::INFINITY);
        assert_eq!(q_error(f64::NAN, f64::NAN), f64::INFINITY);
        // Still symmetric, and never NaN.
        for (e, t) in [
            (f64::NAN, 3.0),
            (f64::INFINITY, 0.0),
            (f64::NAN, f64::INFINITY),
        ] {
            assert_eq!(q_error(e, t), q_error(t, e));
            assert!(!q_error(e, t).is_nan());
        }
    }

    #[test]
    fn summaries_propagate_infinite_errors() {
        // An infinite Q-error must surface in the summary (sorting stays well-defined
        // because INFINITY, unlike NaN, is comparable).
        let s = ErrorSummary::from_pairs(&[(10.0, 10.0), (f64::NAN, 10.0)]);
        assert_eq!(s.max, f64::INFINITY);
        assert_eq!(s.geometric_mean, f64::INFINITY);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn q_error_never_below_one() {
        for (e, t) in [(0.0, 0.0), (0.5, 0.6), (1.0, 1.0), (3.0, 2.0), (1e-9, 1e9)] {
            assert!(q_error(e, t) >= 1.0, "q_error({e}, {t}) < 1");
        }
    }

    #[test]
    fn single_error_summary_collapses_to_that_error() {
        let s = ErrorSummary::from_errors(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.max, 7.0);
        assert!((s.geometric_mean - 7.0).abs() < 1e-12);
    }

    #[test]
    fn two_error_percentiles_interpolate() {
        let s = ErrorSummary::from_errors(&[1.0, 3.0]);
        assert_eq!(s.median, 2.0);
        // p95 of two points interpolates 95% of the way between them.
        assert!((s.p95 - 2.9).abs() < 1e-12);
        assert!((s.p99 - 2.98).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let asc: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let mut desc = asc.clone();
        desc.reverse();
        assert_eq!(
            ErrorSummary::from_errors(&asc),
            ErrorSummary::from_errors(&desc)
        );
    }

    #[test]
    fn identical_errors_have_flat_quantiles() {
        let s = ErrorSummary::from_errors(&[4.0; 33]);
        assert_eq!((s.median, s.p95, s.p99, s.max), (4.0, 4.0, 4.0, 4.0));
        assert!((s.geometric_mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_out_of_range_fractions() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(quantile(&v, -0.5), 1.0);
        assert_eq!(quantile(&v, 1.5), 3.0);
    }

    #[test]
    fn quantile_interpolates_between_ranks() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        // pos = 0.95 * 3 = 2.85 → between 30 and 40.
        assert!((quantile(&v, 0.95) - 38.5).abs() < 1e-12);
        assert_eq!(quantile(&v, 0.5), 25.0);
    }
}
