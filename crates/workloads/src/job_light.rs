//! The JOB-light workload shape: 70 star-join queries over the 6-table schema.
//!
//! Like the original benchmark (Kipf et al. 2019), every query joins `title` with 1–4 of
//! its child tables on `movie_id`, uses equality filters on categorical columns and range
//! filters only on `title.production_year`.  Literals are drawn from inner-join tuples of
//! the synthetic database so every query has a non-empty answer.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_datagen::JOB_LIGHT_TABLES;
use nc_schema::{JoinSchema, Predicate, Query};
use nc_storage::Database;

use crate::generator::{add_filter_from_literal, draw_inner_join_tuple};

/// Equality-filter columns per child table (mirrors the real JOB-light filter columns).
fn child_filter_column(table: &str) -> Option<&'static str> {
    match table {
        "cast_info" => Some("role_id"),
        "movie_companies" => Some("company_type_id"),
        "movie_info" => Some("info_type_id"),
        "movie_keyword" => Some("keyword_id"),
        "movie_info_idx" => Some("info_type_id"),
        _ => None,
    }
}

/// Generates `count` JOB-light-style queries (the original benchmark has 70).
pub fn job_light_queries(
    db: &Arc<Database>,
    schema: &JoinSchema,
    count: usize,
    seed: u64,
) -> Vec<Query> {
    let children: Vec<&str> = JOB_LIGHT_TABLES[1..].to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while queries.len() < count && attempts < count * 20 {
        attempts += 1;
        // 1–4 children joined with title (2–5 tables total, as in the original).
        let n_children = rng.random_range(1..=4usize);
        let mut picked: Vec<&str> = children.clone();
        // Deterministic shuffle-by-selection.
        let mut joined = vec!["title".to_string()];
        for _ in 0..n_children {
            let idx = rng.random_range(0..picked.len());
            joined.push(picked.remove(idx).to_string());
        }
        let Some(tuple) = draw_inner_join_tuple(db, schema, &joined, &mut rng, 300) else {
            continue;
        };

        let refs: Vec<&str> = joined.iter().map(|s| s.as_str()).collect();
        let mut query = Query::join(&refs);

        // Range filter on production_year (present in most JOB-light queries).
        if rng.random::<f64>() < 0.8 {
            let year = &tuple[&("title".to_string(), "production_year".to_string())];
            query =
                add_filter_from_literal(query, "title", "production_year", true, year, &mut rng);
        }
        // Equality filter on title.kind_id for some queries.
        if rng.random::<f64>() < 0.5 {
            let kind = &tuple[&("title".to_string(), "kind_id".to_string())];
            if !kind.is_null() {
                query = query.filter("title", "kind_id", Predicate::eq(kind.clone()));
            }
        }
        // One equality filter per joined child (with some probability).
        for child in joined.iter().skip(1) {
            if rng.random::<f64>() < 0.7 {
                if let Some(col) = child_filter_column(child) {
                    let lit = &tuple[&(child.clone(), col.to_string())];
                    if !lit.is_null() {
                        query = query.filter(child.clone(), col, Predicate::eq(lit.clone()));
                    }
                }
            }
        }
        if query.filters.is_empty() {
            continue;
        }
        debug_assert!(query.validate(schema).is_ok());
        queries.push(query);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};

    #[test]
    fn generates_valid_non_empty_queries() {
        let db = Arc::new(job_light_database(&DataGenConfig::tiny()));
        let schema = job_light_schema();
        let queries = job_light_queries(&db, &schema, 25, 1);
        assert_eq!(queries.len(), 25);
        for q in &queries {
            assert!(q.validate(&schema).is_ok());
            assert!(q.num_tables() >= 2 && q.num_tables() <= 5);
            assert!(!q.filters.is_empty());
            assert!(q.joins("title"));
            let truth = nc_exec::true_cardinality(&db, &schema, q);
            assert!(truth > 0, "query {q} should be non-empty");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let db = Arc::new(job_light_database(&DataGenConfig::tiny()));
        let schema = job_light_schema();
        let a = job_light_queries(&db, &schema, 10, 7);
        let b = job_light_queries(&db, &schema, 10, 7);
        assert_eq!(a, b);
        let c = job_light_queries(&db, &schema, 10, 8);
        assert_ne!(a, c);
    }
}
