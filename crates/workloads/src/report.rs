//! Console / JSON reporting helpers shared by the reproduction harness.

use serde::Serialize;

use crate::qerror::ErrorSummary;

/// One row of an error table: an estimator's name, size and Q-error summary.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorTableRow {
    /// Estimator display name.
    pub estimator: String,
    /// Estimator size in bytes (0 = stateless).
    pub size_bytes: usize,
    /// Q-error summary over the workload.
    pub summary: ErrorSummary,
}

impl ErrorTableRow {
    /// Creates a row.
    pub fn new(estimator: impl Into<String>, size_bytes: usize, summary: ErrorSummary) -> Self {
        ErrorTableRow {
            estimator: estimator.into(),
            size_bytes,
            summary,
        }
    }
}

/// Formats a size in bytes the way the paper does (KB / MB).
pub fn format_size(bytes: usize) -> String {
    if bytes == 0 {
        "–".to_string()
    } else if bytes < 1024 * 1024 {
        format!("{:.0}KB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1}MB", bytes as f64 / (1024.0 * 1024.0))
    }
}

/// Renders an error table in the layout of the paper's Tables 2–4 and returns it as a
/// string (callers print it and/or write it to a file).
pub fn render_error_table(title: &str, rows: &[ErrorTableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
        "Estimator", "Size", "Median", "95th", "99th", "Max"
    ));
    out.push_str(&"-".repeat(74));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<22} {:>9} {:>9.2} {:>9.1} {:>9.1} {:>10.1}\n",
            row.estimator,
            format_size(row.size_bytes),
            row.summary.median,
            row.summary.p95,
            row.summary.p99,
            row.summary.max
        ));
    }
    out
}

/// Prints an error table to stdout.
pub fn print_error_table(title: &str, rows: &[ErrorTableRow]) {
    print!("{}", render_error_table(title, rows));
}

/// Serialises any reportable value to pretty JSON (written next to the console output so
/// results can be post-processed, e.g. plotted).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report values serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_contains_all_rows() {
        let summary = ErrorSummary::from_errors(&[1.0, 2.0, 8.0, 100.0]);
        let rows = vec![
            ErrorTableRow::new("NeuroCard", 4 << 20, summary.clone()),
            ErrorTableRow::new("Postgres-like", 70 << 10, summary.clone()),
            ErrorTableRow::new("IBJS", 0, summary),
        ];
        let s = render_error_table("Table 2: JOB-light", &rows);
        assert!(s.contains("NeuroCard"));
        assert!(s.contains("Postgres-like"));
        assert!(s.contains("IBJS"));
        assert!(s.contains("Median"));
        assert!(s.lines().count() >= 6);
        print_error_table("Table 2: JOB-light", &rows);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(format_size(0), "–");
        assert_eq!(format_size(70 * 1024), "70KB");
        assert_eq!(format_size(4 * 1024 * 1024), "4.0MB");
    }

    #[test]
    fn json_roundtrip() {
        let summary = ErrorSummary::from_errors(&[1.0, 3.0]);
        let row = ErrorTableRow::new("x", 10, summary);
        let json = to_json(&row);
        assert!(json.contains("\"estimator\""));
        assert!(json.contains("median"));
    }
}
