//! JOB-M: multi-key joins over the 16-table schema (§7.1, Table 4).
//!
//! Every query joins a connected subtree of the JOB-M snowflake containing `title`,
//! spanning 2–11 tables and therefore multiple different join keys (movie ids, person ids,
//! company ids, keyword ids, …).  Filters are placed on content columns of the joined
//! tables, literals drawn from inner-join tuples.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_datagen::imdb_m::job_m_filter_columns;
use nc_schema::{JoinSchema, Query};
use nc_storage::Database;

use crate::generator::{add_filter_from_literal, draw_inner_join_tuple, random_connected_subtree};

/// Generates `count` JOB-M queries.
pub fn job_m_queries(
    db: &Arc<Database>,
    schema: &JoinSchema,
    count: usize,
    seed: u64,
) -> Vec<Query> {
    let filter_columns = job_m_filter_columns();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while queries.len() < count && attempts < count * 30 {
        attempts += 1;
        let size = rng.random_range(2..=11usize);
        let joined = random_connected_subtree(schema, size, &mut rng);
        let Some(tuple) = draw_inner_join_tuple(db, schema, &joined, &mut rng, 400) else {
            continue;
        };
        let candidates: Vec<_> = filter_columns
            .iter()
            .filter(|(t, _, _)| joined.iter().any(|j| j == t))
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let refs: Vec<&str> = joined.iter().map(|s| s.as_str()).collect();
        let mut query = Query::join(&refs);
        let n_filters = rng.random_range(2..=5usize).min(candidates.len());
        let mut chosen = Vec::new();
        let mut guard = 0;
        while chosen.len() < n_filters && guard < 100 {
            guard += 1;
            let pick = candidates[rng.random_range(0..candidates.len())];
            if chosen.contains(&pick) {
                continue;
            }
            chosen.push(pick);
            let (table, column, supports_range) = *pick;
            let literal = &tuple[&(table.to_string(), column.to_string())];
            query =
                add_filter_from_literal(query, table, column, supports_range, literal, &mut rng);
        }
        if query.filters.is_empty() {
            continue;
        }
        debug_assert!(query.validate(schema).is_ok());
        queries.push(query);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_datagen::{job_m_database, job_m_schema, DataGenConfig};

    #[test]
    fn queries_span_many_tables_and_are_non_empty() {
        let db = Arc::new(job_m_database(&DataGenConfig::tiny()));
        let schema = job_m_schema();
        let queries = job_m_queries(&db, &schema, 12, 4);
        assert_eq!(queries.len(), 12);
        let mut max_tables = 0;
        let mut multi_key = 0;
        for q in &queries {
            assert!(q.validate(&schema).is_ok());
            max_tables = max_tables.max(q.num_tables());
            // A query is "multi-key" when it joins through a non-movie_id key, i.e. it
            // includes one of the dimension tables.
            if q.tables.iter().any(|t| {
                matches!(
                    t.as_str(),
                    "name"
                        | "role_type"
                        | "company_name"
                        | "company_type"
                        | "keyword"
                        | "info_type"
                        | "comp_cast_type"
                )
            }) {
                multi_key += 1;
            }
            let truth = nc_exec::true_cardinality(&db, &schema, q);
            assert!(truth > 0, "query {q} should be non-empty");
        }
        assert!(
            max_tables >= 4,
            "expected some wide queries, got max {max_tables}"
        );
        assert!(multi_key > 0, "expected at least one multi-key join query");
    }
}
