//! JOB-light-ranges: the harder synthesized benchmark of the paper (§7.1).
//!
//! Compared with JOB-light it (a) touches many more content columns, (b) uses 3–6 filters
//! per query, and (c) allows range operators on every range-capable column, which widens
//! the selectivity spectrum by orders of magnitude (Figure 6).  Queries are distributed
//! uniformly over the JOB-light join graphs, and literals come from inner-join tuples so
//! every query is non-empty.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_datagen::imdb_light::job_light_filter_columns;
use nc_datagen::JOB_LIGHT_TABLES;
use nc_schema::{JoinSchema, Query};
use nc_storage::Database;

use crate::generator::{add_filter_from_literal, draw_inner_join_tuple};

/// Generates `count` JOB-light-ranges queries (the paper uses 1000).
pub fn job_light_ranges_queries(
    db: &Arc<Database>,
    schema: &JoinSchema,
    count: usize,
    seed: u64,
) -> Vec<Query> {
    let children: Vec<&str> = JOB_LIGHT_TABLES[1..].to_vec();
    let filter_columns = job_light_filter_columns();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while queries.len() < count && attempts < count * 20 {
        attempts += 1;
        // Join graph: title plus 1..=5 children.
        let n_children = rng.random_range(1..=children.len());
        let mut pool = children.clone();
        let mut joined = vec!["title".to_string()];
        for _ in 0..n_children {
            let idx = rng.random_range(0..pool.len());
            joined.push(pool.remove(idx).to_string());
        }
        let Some(tuple) = draw_inner_join_tuple(db, schema, &joined, &mut rng, 300) else {
            continue;
        };

        // Candidate filter columns restricted to the joined tables.
        let candidates: Vec<_> = filter_columns
            .iter()
            .filter(|(t, _, _)| joined.iter().any(|j| j == t))
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let n_filters = rng.random_range(3..=6usize).min(candidates.len());
        let refs: Vec<&str> = joined.iter().map(|s| s.as_str()).collect();
        let mut query = Query::join(&refs);
        let mut chosen = Vec::new();
        let mut guard = 0;
        while chosen.len() < n_filters && guard < 100 {
            guard += 1;
            let pick = candidates[rng.random_range(0..candidates.len())];
            if chosen.contains(&pick) {
                continue;
            }
            chosen.push(pick);
            let (table, column, supports_range) = *pick;
            let literal = &tuple[&(table.to_string(), column.to_string())];
            query =
                add_filter_from_literal(query, table, column, supports_range, literal, &mut rng);
        }
        if query.filters.len() < 2 {
            continue;
        }
        debug_assert!(query.validate(schema).is_ok());
        queries.push(query);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};

    #[test]
    fn queries_are_valid_non_empty_and_more_filtered_than_job_light() {
        let db = Arc::new(job_light_database(&DataGenConfig::tiny()));
        let schema = job_light_schema();
        let queries = job_light_ranges_queries(&db, &schema, 20, 2);
        assert_eq!(queries.len(), 20);
        let mut range_ops = 0usize;
        for q in &queries {
            assert!(q.validate(&schema).is_ok());
            assert!(q.filters.len() >= 2);
            let truth = nc_exec::true_cardinality(&db, &schema, q);
            assert!(truth > 0, "query {q} should be non-empty");
            range_ops += q
                .filters
                .iter()
                .filter(|f| {
                    matches!(
                        f.predicate.op,
                        nc_schema::CompareOp::Le | nc_schema::CompareOp::Ge
                    )
                })
                .count();
        }
        assert!(
            range_ops > 5,
            "expected a healthy number of range predicates"
        );
    }

    #[test]
    fn deterministic() {
        let db = Arc::new(job_light_database(&DataGenConfig::tiny()));
        let schema = job_light_schema();
        assert_eq!(
            job_light_ranges_queries(&db, &schema, 8, 3),
            job_light_ranges_queries(&db, &schema, 8, 3)
        );
    }
}
