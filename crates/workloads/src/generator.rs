//! Shared query-generation machinery.
//!
//! The JOB-light-ranges methodology of the paper (§7.1) is used for all generated
//! workloads: for a chosen join graph, draw a tuple from the *inner join* result and use
//! its non-NULL column values as filter literals.  Literals drawn this way (a) follow the
//! data distribution and (b) guarantee a non-empty answer for `=`, `<=` and `>=` filters.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use nc_sampler::JoinSampler;
use nc_schema::{CompareOp, JoinSchema, Predicate, Query};
use nc_storage::{Database, Value};

/// Builds the join sub-schema induced by a connected table subset (same convention as the
/// baselines: the root is the subset table closest to the schema root).
pub fn subset_schema(schema: &JoinSchema, tables: &[String]) -> JoinSchema {
    let edges = schema
        .edges()
        .iter()
        .filter(|e| tables.contains(&e.left.table) && tables.contains(&e.right.table))
        .cloned()
        .collect();
    let root = schema
        .bfs_order()
        .iter()
        .find(|t| tables.contains(t))
        .expect("non-empty subset")
        .clone();
    JoinSchema::new(tables.to_vec(), edges, root).expect("connected subsets are valid schemas")
}

/// Draws one tuple from the inner join of `tables`, as a map `(table, column) → value`.
///
/// Returns `None` if the inner join appears to be empty (no success within the attempt
/// budget).
pub fn draw_inner_join_tuple(
    db: &Arc<Database>,
    schema: &JoinSchema,
    tables: &[String],
    rng: &mut StdRng,
    max_attempts: usize,
) -> Option<HashMap<(String, String), Value>> {
    let sub = Arc::new(subset_schema(schema, tables));
    let sampler = JoinSampler::new(db.clone(), sub.clone());
    for _ in 0..max_attempts {
        let sample = sampler.sample(rng);
        if sample.slots.iter().any(|s| s.is_none()) {
            continue; // not an inner-join row
        }
        let mut out = HashMap::new();
        for (slot, table) in sample.slots.iter().zip(sampler.table_order()) {
            let t = db.expect_table(table);
            let row = slot.expect("checked all slots are real");
            for col in t.columns() {
                out.insert(
                    (table.clone(), col.name().to_string()),
                    col.value(row as usize),
                );
            }
        }
        return Some(out);
    }
    None
}

/// A filterable column: `(table, column, supports_range)`.
pub type FilterColumn = (&'static str, &'static str, bool);

/// Adds a filter on `(table, column)` using `literal`, choosing the operator according to
/// whether the column supports ranges.  Returns the query unchanged if the literal is NULL.
pub fn add_filter_from_literal(
    query: Query,
    table: &str,
    column: &str,
    supports_range: bool,
    literal: &Value,
    rng: &mut StdRng,
) -> Query {
    if literal.is_null() {
        return query;
    }
    let op = if supports_range {
        match rng.random_range(0..3) {
            0 => CompareOp::Le,
            1 => CompareOp::Ge,
            _ => CompareOp::Eq,
        }
    } else {
        CompareOp::Eq
    };
    let predicate = Predicate::new(op, vec![literal.clone()]);
    query.filter(table, column, predicate)
}

/// Chooses a connected subtree of `schema` with `size` tables that always contains the
/// schema root, by repeatedly attaching a random table adjacent to the current frontier.
pub fn random_connected_subtree(schema: &JoinSchema, size: usize, rng: &mut StdRng) -> Vec<String> {
    let size = size.clamp(1, schema.num_tables());
    let mut chosen = vec![schema.root().to_string()];
    while chosen.len() < size {
        // All tables adjacent to the chosen set but not yet in it.
        let mut frontier: Vec<String> = Vec::new();
        for t in &chosen {
            for c in schema.children(t) {
                if !chosen.contains(c) && !frontier.contains(c) {
                    frontier.push(c.clone());
                }
            }
            if let Some(p) = schema.parent(t) {
                if !chosen.contains(&p.to_string()) && !frontier.contains(&p.to_string()) {
                    frontier.push(p.to_string());
                }
            }
        }
        if frontier.is_empty() {
            break;
        }
        let next = frontier[rng.random_range(0..frontier.len())].clone();
        chosen.push(next);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
    use rand::SeedableRng;

    #[test]
    fn drawn_tuples_come_from_the_inner_join() {
        let db = Arc::new(job_light_database(&DataGenConfig::tiny()));
        let schema = job_light_schema();
        let mut rng = StdRng::seed_from_u64(3);
        let tables = vec!["title".to_string(), "cast_info".to_string()];
        let tuple = draw_inner_join_tuple(&db, &schema, &tables, &mut rng, 200)
            .expect("JOB-light inner join is non-empty");
        // The joined keys must agree.
        assert_eq!(
            tuple[&("title".to_string(), "id".to_string())],
            tuple[&("cast_info".to_string(), "movie_id".to_string())]
        );
    }

    #[test]
    fn random_subtrees_are_connected_and_contain_root() {
        let schema = job_light_schema();
        let mut rng = StdRng::seed_from_u64(5);
        for size in 1..=6 {
            let t = random_connected_subtree(&schema, size, &mut rng);
            assert_eq!(t.len(), size);
            assert!(t.contains(&"title".to_string()));
            assert!(schema.is_connected_subset(&t));
        }
    }

    #[test]
    fn filters_from_literals_respect_nulls_and_ops() {
        let mut rng = StdRng::seed_from_u64(9);
        let q = Query::join(&["title"]);
        let q = add_filter_from_literal(
            q,
            "title",
            "production_year",
            true,
            &Value::Int(2001),
            &mut rng,
        );
        assert_eq!(q.filters.len(), 1);
        let q2 = add_filter_from_literal(
            q.clone(),
            "title",
            "episode_nr",
            true,
            &Value::Null,
            &mut rng,
        );
        assert_eq!(q2.filters.len(), 1, "NULL literals must not create filters");
        let q3 = add_filter_from_literal(q, "title", "kind_id", false, &Value::Int(2), &mut rng);
        assert_eq!(q3.filters[1].predicate.op, CompareOp::Eq);
    }
}
