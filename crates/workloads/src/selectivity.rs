//! Query selectivity relative to the unfiltered inner join (Figure 6 of the paper).

use nc_schema::{JoinSchema, Query};
use nc_storage::Database;

/// `selectivity(Q) = card_actual(Q) / card_inner(join graph of Q)` — the fraction of the
/// query's unfiltered inner join that survives its filters.  Returns a value in `[0, 1]`
/// (0 when the unfiltered join itself is empty).
pub fn query_selectivity(db: &Database, schema: &JoinSchema, query: &Query) -> f64 {
    let actual = nc_exec::true_cardinality(db, schema, query) as f64;
    let refs: Vec<&str> = query.tables.iter().map(|s| s.as_str()).collect();
    let denom = nc_exec::inner_join_count(db, schema, &refs) as f64;
    if denom == 0.0 {
        0.0
    } else {
        (actual / denom).clamp(0.0, 1.0)
    }
}

/// Convenience: selectivities of a whole workload, sorted ascending (i.e. the CDF x-axis of
/// Figure 6).
pub fn selectivity_spectrum(db: &Database, schema: &JoinSchema, queries: &[Query]) -> Vec<f64> {
    let mut out: Vec<f64> = queries
        .iter()
        .map(|q| query_selectivity(db, schema, q))
        .collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("selectivities are finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::{TableBuilder, Value};

    #[test]
    fn selectivity_fractions() {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "v"]);
        for i in 0..100i64 {
            a.push_row(vec![Value::Int(i), Value::Int(i % 10)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x"]);
        for i in 0..100i64 {
            b.push_row(vec![Value::Int(i)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        let q = Query::join(&["A", "B"]).filter("A", "v", Predicate::eq(3i64));
        let s = query_selectivity(&db, &schema, &q);
        assert!((s - 0.1).abs() < 1e-9);
        let spectrum = selectivity_spectrum(
            &db,
            &schema,
            &[q, Query::join(&["A"]).filter("A", "v", Predicate::lt(5i64))],
        );
        assert_eq!(spectrum.len(), 2);
        assert!(spectrum[0] <= spectrum[1]);
    }
}
