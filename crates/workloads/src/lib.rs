//! # nc-workloads
//!
//! The benchmark workloads of the paper's evaluation (§7.1) and the metrics used to score
//! them:
//!
//! * [`job_light`] — the 70-query JOB-light benchmark shape: 2–5 table star joins over the
//!   6-table schema with equality filters plus a range filter on `production_year`,
//! * [`job_light_ranges`] — the harder synthesized benchmark: many more content columns are
//!   filtered, with 3–6 mixed equality/range predicates per query, literals drawn from
//!   actual inner-join tuples so every query has a non-empty answer,
//! * [`job_m`] — multi-key joins over the 16-table JOB-M schema, 2–11 tables per query,
//! * [`qerror`] — the Q-error metric and its quantile summaries,
//! * [`selectivity`] — query selectivity relative to the unfiltered inner join (Figure 6),
//! * [`report`] — fixed-width console tables and JSON output for the reproduction harness.
//!
//! All generators are deterministic given a seed.

pub mod generator;
pub mod job_light;
pub mod job_light_ranges;
pub mod job_m;
pub mod qerror;
pub mod report;
pub mod selectivity;

pub use job_light::job_light_queries;
pub use job_light_ranges::job_light_ranges_queries;
pub use job_m::job_m_queries;
pub use qerror::{q_error, ErrorSummary};
pub use report::{print_error_table, ErrorTableRow};
pub use selectivity::query_selectivity;
