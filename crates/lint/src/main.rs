//! The `nc-lint` binary: `cargo run -p nc-lint -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

use nc_lint::lints::all_lints;

fn usage() -> ! {
    eprintln!(
        "usage: nc-lint --workspace [--root <dir>] [--report <path>]\n       nc-lint --list\n\n\
         --workspace       lint every crate under <root>/crates\n\
         --root <dir>      workspace root (default: current directory)\n\
         --report <path>   write the JSON report here (default: <root>/LINT_report.json)\n\
         --list            print the lint catalogue and exit"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut list = false;
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => usage(),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    if list {
        for lint in all_lints() {
            let spec = lint.spec();
            println!("{:<20} {}", spec.id, spec.summary);
        }
        return ExitCode::SUCCESS;
    }
    if !workspace {
        usage();
    }

    // `cargo run` sets the cwd to the workspace root already; honour an explicit
    // --root for out-of-tree invocations.
    let report = match nc_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nc-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_human());
    let json_path = report_path.unwrap_or_else(|| root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("nc-lint: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
