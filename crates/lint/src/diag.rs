//! Typed diagnostics and the rendered report (human + `LINT_report.json`).

use std::fmt::Write as _;

/// How bad a finding is.  Every current lint gates CI, so everything is `Error`; the
/// distinction exists so future advisory lints can ride the same pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (non-zero exit).
    Error,
    /// Reported but does not fail the run.
    Warn,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint id (`lock-poison`, `lock-order`, ... or `suppression` for directive
    /// errors).
    pub lint: String,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human message.
    pub message: String,
}

/// A finding that was silenced by a justified `nc-lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Lint id.
    pub lint: String,
    /// Workspace-relative file.
    pub file: String,
    /// Line the silenced finding was on.
    pub line: usize,
    /// The written justification the directive carried.
    pub justification: String,
}

/// Everything one run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Live findings (suppressed ones are moved to `suppressed`).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by justified allows.
    pub suppressed: Vec<Suppressed>,
    /// Files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// True when nothing error-severity survived.
    pub fn ok(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The terminal rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let mut diags: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for d in &diags {
            let _ = writeln!(
                out,
                "{}[{}]: {}:{}: {}",
                d.severity.as_str(),
                d.lint,
                d.file,
                d.line,
                d.message
            );
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let _ = writeln!(
            out,
            "nc-lint: {} error{}, {} finding{} suppressed with justification, {} file{} scanned",
            errors,
            if errors == 1 { "" } else { "s" },
            self.suppressed.len(),
            if self.suppressed.len() == 1 { "" } else { "s" },
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        );
        out
    }

    /// The machine-readable rendering (`LINT_report.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"ok\": {},", self.ok());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"lint\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(&d.lint),
                json_string(d.severity.as_str()),
                json_string(&d.file),
                d.line,
                json_string(&d.message)
            );
            out.push_str(if i + 1 < self.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"suppressed\": [\n");
        for (i, s) in self.suppressed.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}",
                json_string(&s.lint),
                json_string(&s.file),
                s.line,
                json_string(&s.justification)
            );
            out.push_str(if i + 1 < self.suppressed.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_renders_and_ok_tracks_errors() {
        let mut r = Report {
            files_scanned: 3,
            ..Default::default()
        };
        assert!(r.ok());
        r.diagnostics.push(Diagnostic {
            lint: "lock-poison".into(),
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "bad".into(),
        });
        assert!(!r.ok());
        let human = r.render_human();
        assert!(human.contains("error[lock-poison]: crates/x/src/lib.rs:7: bad"));
        assert!(human.contains("1 error"));
        let json = r.to_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"line\": 7"));
    }
}
