//! A comment- and string-literal-aware lexer.
//!
//! [`lex`] produces a **masked** copy of the source — byte-for-byte the same length,
//! with the contents of every comment, string literal and char literal blanked to
//! spaces (newlines preserved) — plus the list of comments with their text.  Lints
//! pattern-match against the masked text, so `".lock().unwrap()"` inside a string or a
//! doc comment can never fire a diagnostic, while suppression directives are parsed
//! from the recovered comment text.
//!
//! The lexer understands: line comments (`//`, `///`, `//!`), nested block comments,
//! ordinary strings with escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth, plus
//! `b`/`c` prefixes), byte strings, char literals (including escaped ones), and tells
//! lifetimes (`'a`) apart from char literals.

/// One comment recovered from the source.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text without its delimiters (`//` / `/* */`).
    pub text: String,
    /// True when code precedes the comment on its starting line (a trailing comment).
    pub trailing: bool,
}

/// The lexer's output: masked source + recovered comments.
#[derive(Debug)]
pub struct Lexed {
    /// Same length as the input; comment/string/char interiors blanked to spaces.
    pub masked: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

fn mask_range(masked: &mut [u8], from: usize, to: usize) {
    let to = to.min(masked.len());
    for b in &mut masked[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `source` (see module docs).  Never fails: malformed input (unterminated
/// strings/comments) is masked to end of file, which is the conservative direction —
/// nothing inside can fire a lint.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let len = b.len();
    let mut masked = b.to_vec();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut line_has_code = false;

    while i < len {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        // Line comment (also covers /// and //! doc comments).
        if c == b'/' && i + 1 < len && b[i + 1] == b'/' {
            let start = i;
            while i < len && b[i] != b'\n' {
                i += 1;
            }
            comments.push(Comment {
                line,
                text: source[start + 2..i].to_string(),
                trailing: line_has_code,
            });
            mask_range(&mut masked, start, i);
            continue;
        }
        // Block comment, nesting included (also covers /** and /*! doc comments).
        if c == b'/' && i + 1 < len && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let trailing = line_has_code;
            let mut depth = 1usize;
            i += 2;
            while i < len && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < len && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < len && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text_end = if depth == 0 { i - 2 } else { i };
            comments.push(Comment {
                line: start_line,
                text: source[start + 2..text_end.max(start + 2)].to_string(),
                trailing,
            });
            mask_range(&mut masked, start, i);
            continue;
        }
        // Raw strings: r"…" / r#"…"# / br#"…"# / cr"…" — only when the prefix letter
        // is not the tail of an identifier (`var` vs `r"..."`).
        if (c == b'r' || ((c == b'b' || c == b'c') && i + 1 < len && b[i + 1] == b'r'))
            && (i == 0 || !is_ident_byte(b[i - 1]))
        {
            let after_r = if c == b'r' { i + 1 } else { i + 2 };
            let mut hashes = 0usize;
            let mut j = after_r;
            while j < len && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < len && b[j] == b'"' {
                // Interior runs until `"` followed by `hashes` hashes.
                let open = j;
                j += 1;
                'scan: while j < len {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                        continue;
                    }
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while k < len && seen < hashes && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break 'scan;
                        }
                    }
                    j += 1;
                }
                mask_range(&mut masked, open + 1, j.saturating_sub(1 + hashes));
                line_has_code = true;
                i = j;
                continue;
            }
            // Not a raw string after all: plain identifier character.
            line_has_code = true;
            i += 1;
            continue;
        }
        // Ordinary (or byte) string.
        if c == b'"' {
            let open = i;
            i += 1;
            while i < len {
                if b[i] == b'\\' {
                    // A `\<newline>` line continuation still ends a source line.
                    if i + 1 < len && b[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    break;
                }
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            mask_range(&mut masked, open + 1, i);
            i = (i + 1).min(len);
            line_has_code = true;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < len && b[i + 1] == b'\\' {
                // Escaped char literal: '\n', '\'', '\u{1F600}'.
                let open = i;
                i += 2;
                while i < len && b[i] != b'\'' {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                mask_range(&mut masked, open + 1, i);
                i = (i + 1).min(len);
                line_has_code = true;
                continue;
            }
            if i + 2 < len && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                // Plain char literal 'x' (multi-byte scalars are rare enough that
                // treating them as lifetimes below is harmless: nothing is masked,
                // nothing lint-relevant hides in one scalar).
                masked[i + 1] = b' ';
                i += 3;
                line_has_code = true;
                continue;
            }
            // Lifetime ('a) or label: leave as-is.
            line_has_code = true;
            i += 1;
            continue;
        }
        if !c.is_ascii_whitespace() {
            line_has_code = true;
        }
        i += 1;
    }

    // Masking never changes length, so line numbers in the masked text line up with
    // the original byte-for-byte.
    debug_assert_eq!(masked.len(), source.len());
    Lexed {
        masked: String::from_utf8_lossy(&masked).into_owned(),
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let src = r#"let a = "x.lock().unwrap()"; // c.lock().unwrap()
let b = 1; /* block .unwrap() */ let c = 2;
"#;
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("let a ="));
        assert!(lexed.masked.contains("let c = 2;"));
        assert_eq!(lexed.masked.len(), src.len());
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(lexed.comments[0].text.contains("c.lock().unwrap()"));
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src = "let a = r#\"panic!(\"x\")\"#; let b = 'p'; let l: &'static str = \"y\";";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("panic!"));
        assert!(lexed.masked.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let src = "/* a /* b */ c.unwrap() */ code();\n/// doc .unwrap()\nfn f() {}\n";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("code();"));
        assert!(lexed.masked.contains("fn f() {}"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn newlines_survive_masking_for_line_numbers() {
        let src = "let s = \"line\nline\nline\";\nlet t = 1;\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.masked.matches('\n').count(),
            src.matches('\n').count()
        );
        assert!(lexed.masked.contains("let t = 1;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\".unwrap()\"b"; call();"#;
        let lexed = lex(src);
        assert!(!lexed.masked.contains("unwrap"));
        assert!(lexed.masked.contains("call();"));
    }

    #[test]
    fn backslash_line_continuations_keep_comment_lines_aligned() {
        // The `\<newline>` inside the string swallows the escape but the line still
        // ends — the comment after it must land on line 3, not line 2.
        let src = "let s = \"one \\\n         two\";\n// after\nlet x = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 3);
        assert!(!lexed.comments[0].trailing);
    }
}
