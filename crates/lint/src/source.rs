//! The per-file analysis model: masked text, line table, test regions, suppressions.

use crate::lexer::{lex, Comment};

/// What role a file plays in its crate — lints scope themselves by kind (e.g.
/// `panic-in-serving` applies to library code only; a `tests/` file is test code in
/// its entirety).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` reachable from the crate's lib target.
    Lib,
    /// `src/bin/**`, `src/main.rs`, `build.rs` — binary / build code.
    Bin,
    /// `tests/**` integration tests.
    Test,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// One parsed `// nc-lint: allow(<id>) — <justification>` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Lint ids the directive allows.
    pub ids: Vec<String>,
    /// The mandatory human justification.
    pub justification: String,
    /// Line the comment starts on.
    pub line: usize,
    /// Line the suppression applies to: the comment's own line for a trailing
    /// comment, the next line carrying code for a standalone one.
    pub target_line: usize,
}

/// A malformed suppression directive (reported as a diagnostic — a broken allow must
/// never silently allow nothing, or silently allow everything).
#[derive(Debug, Clone)]
pub struct SuppressionError {
    /// Line the directive is on.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// One source file, lexed and indexed for the lints.
pub struct SourceFile {
    /// Workspace-relative path (diagnostics render it).
    pub rel_path: String,
    /// Crate the file belongs to: `"serve"`, `"neurocard"`, `"compat/rand"`, ...
    pub crate_name: String,
    /// Role of the file in its crate.
    pub kind: FileKind,
    /// Masked source (comments/strings blanked; see [`crate::lexer`]).
    pub masked: String,
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression directives.
    pub suppression_errors: Vec<SuppressionError>,
    /// Byte offset of each line start in `masked` (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Per line: is it inside a `#[cfg(test)]` item or a `mod tests` block?
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn new(
        rel_path: impl Into<String>,
        crate_name: impl Into<String>,
        kind: FileKind,
        source: &str,
    ) -> Self {
        let lexed = lex(source);
        let line_starts = line_starts(&lexed.masked);
        let line_count = line_starts.len();
        let mut test_lines = vec![false; line_count + 2];
        for (from, to) in find_test_regions(&lexed.masked, &line_starts) {
            for flag in test_lines
                .iter_mut()
                .take(to.min(line_count) + 1)
                .skip(from)
            {
                *flag = true;
            }
        }
        let (suppressions, suppression_errors) =
            parse_suppressions(&lexed.comments, &lexed.masked, &line_starts);
        SourceFile {
            rel_path: rel_path.into(),
            crate_name: crate_name.into(),
            kind,
            masked: lexed.masked,
            suppressions,
            suppression_errors,
            line_starts,
            test_lines,
        }
    }

    /// 1-based line containing byte offset `pos` of the (masked) source.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Is `line` inside a `#[cfg(test)]` item or `mod tests` block?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Matches the closing `}` for the `{` at `open` (masked text: string/comment braces
/// are already blanked, so plain counting is exact).
pub fn match_brace(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    debug_assert_eq!(b[open], b'{');
    let mut depth = 0usize;
    for (off, &c) in b[open..].iter().enumerate() {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

fn match_bracket(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    debug_assert_eq!(b[open], b'[');
    let mut depth = 0usize;
    for (off, &c) in b[open..].iter().enumerate() {
        match c {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items and `mod tests`
/// blocks.
fn find_test_regions(masked: &str, starts: &[usize]) -> Vec<(usize, usize)> {
    let line_of = |pos: usize| match starts.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i,
    };
    let b = masked.as_bytes();
    let mut regions = Vec::new();

    // `#[cfg(test)]` followed by (possibly more attributes and) a braced item.
    let mut search = 0usize;
    while let Some(off) = masked[search..].find("#[cfg(test)]") {
        let attr_at = search + off;
        let mut j = attr_at + "#[cfg(test)]".len();
        loop {
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j + 1 < b.len() && b[j] == b'#' && b[j + 1] == b'[' {
                match match_bracket(masked, j + 1) {
                    Some(close) => j = close + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        // Scan the item header for its body brace; a `;` first means no body here
        // (e.g. `#[cfg(test)] mod tests;` — the out-of-line file is test code, but
        // that is the walker's concern, not this file's).
        let mut k = j;
        while k < b.len() && b[k] != b'{' && b[k] != b';' {
            k += 1;
        }
        if k < b.len() && b[k] == b'{' {
            if let Some(close) = match_brace(masked, k) {
                regions.push((line_of(attr_at), line_of(close)));
            }
        }
        search = attr_at + 1;
    }

    // `mod tests { … }` even without the attribute.
    let mut search = 0usize;
    while let Some(off) = masked[search..].find("mod tests") {
        let at = search + off;
        search = at + 1;
        if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let mut j = at + "mod tests".len();
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if j < b.len() && b[j] == b'{' {
            if let Some(close) = match_brace(masked, j) {
                regions.push((line_of(at), line_of(close)));
            }
        }
    }
    regions
}

/// Separators accepted between `allow(...)` and the justification.
const JUSTIFICATION_SEPARATORS: [char; 4] = ['\u{2014}', '\u{2013}', '-', ':'];

fn parse_suppressions(
    comments: &[Comment],
    masked: &str,
    starts: &[usize],
) -> (Vec<Suppression>, Vec<SuppressionError>) {
    let mut ok = Vec::new();
    let mut errors = Vec::new();
    let masked_lines: Vec<&str> = masked.lines().collect();
    for comment in comments {
        let Some(at) = comment.text.find("nc-lint:") else {
            continue;
        };
        // Only a directive at the start of the comment counts: prose *about* the
        // syntax (doc comments, code samples) must not become a live allow.
        if !comment.text[..at].trim().is_empty() {
            continue;
        }
        let rest = comment.text[at + "nc-lint:".len()..].trim_start();
        let Some(ids_part) = rest.strip_prefix("allow(") else {
            errors.push(SuppressionError {
                line: comment.line,
                message: format!(
                    "malformed nc-lint directive (expected `nc-lint: allow(<id>) — <justification>`): {}",
                    comment.text.trim()
                ),
            });
            continue;
        };
        let Some(close) = ids_part.find(')') else {
            errors.push(SuppressionError {
                line: comment.line,
                message: "malformed nc-lint directive: unclosed allow(...)".to_string(),
            });
            continue;
        };
        let ids: Vec<String> = ids_part[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if ids.is_empty() {
            errors.push(SuppressionError {
                line: comment.line,
                message: "malformed nc-lint directive: allow() names no lint".to_string(),
            });
            continue;
        }
        let mut justification = ids_part[close + 1..].trim_start();
        let had_separator = justification
            .chars()
            .next()
            .is_some_and(|c| JUSTIFICATION_SEPARATORS.contains(&c));
        justification = justification
            .trim_start_matches(|c| JUSTIFICATION_SEPARATORS.contains(&c))
            .trim();
        if !had_separator || justification.is_empty() {
            errors.push(SuppressionError {
                line: comment.line,
                message: format!(
                    "suppression of {} requires a written justification: `nc-lint: allow({}) — <why this is safe>`",
                    ids.join(", "),
                    ids.join(", ")
                ),
            });
            continue;
        }
        let target_line = if comment.trailing {
            comment.line
        } else {
            // Standalone comment: applies to the next line that carries code (in the
            // masked text, comment-only and blank lines are both blank).
            let mut t = comment.line + 1;
            while t <= masked_lines.len() && masked_lines[t - 1].trim().is_empty() {
                t += 1;
            }
            t
        };
        ok.push(Suppression {
            ids,
            justification: justification.to_string(),
            line: comment.line,
            target_line,
        });
    }
    let _ = starts;
    (ok, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", "x", FileKind::Lib, src)
    }

    #[test]
    fn cfg_test_and_mod_tests_regions_are_detected() {
        let src = "fn a() {}\n#[cfg(test)]\nmod checks {\n    fn b() {}\n}\nfn c() {}\nmod tests {\n    fn d() {}\n}\n";
        let f = file(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
        assert!(f.is_test_line(8));
    }

    #[test]
    fn attributes_between_cfg_test_and_item_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod m {\n    fn x() {}\n}\n";
        let f = file(src);
        assert!(f.is_test_line(4));
    }

    #[test]
    fn suppression_parses_with_justification() {
        let src = "// nc-lint: allow(lock-poison) — fixture exercising the parser\nlet g = m.lock().unwrap();\n";
        let f = file(src);
        assert_eq!(f.suppression_errors.len(), 0);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.ids, vec!["lock-poison"]);
        assert_eq!(s.target_line, 2);
        assert!(s.justification.contains("fixture"));
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let src = "let g = m.lock().unwrap(); // nc-lint: allow(lock-poison) - reason here\n";
        let f = file(src);
        assert_eq!(f.suppressions[0].target_line, 1);
    }

    #[test]
    fn standalone_suppression_skips_blank_and_comment_lines() {
        let src =
            "// nc-lint: allow(print-in-lib) — reason\n\n// another comment\nprintln!(\"x\");\n";
        let f = file(src);
        assert_eq!(f.suppressions[0].target_line, 4);
    }

    #[test]
    fn missing_justification_is_an_error() {
        for src in [
            "// nc-lint: allow(lock-poison)\nlet x = 1;\n",
            "// nc-lint: allow(lock-poison) —   \nlet x = 1;\n",
            "// nc-lint: allow(lock-poison) trailing words without separator\nlet x = 1;\n",
        ] {
            let f = file(src);
            assert_eq!(f.suppressions.len(), 0, "src: {src}");
            assert_eq!(f.suppression_errors.len(), 1, "src: {src}");
            assert!(f.suppression_errors[0].message.contains("justification"));
        }
    }

    #[test]
    fn malformed_directives_are_errors_but_prose_is_not() {
        let f = file("// nc-lint: deny(everything)\nlet x = 1;\n");
        assert_eq!(f.suppression_errors.len(), 1);
        // Mentioning the syntax mid-sentence is not a directive.
        let f = file("// the syntax is nc-lint: allow(id) — see docs\nlet x = 1;\n");
        assert_eq!(f.suppressions.len(), 0);
        assert_eq!(f.suppression_errors.len(), 0);
    }

    #[test]
    fn multiple_ids_in_one_allow() {
        let f = file("// nc-lint: allow(lock-poison, panic-in-serving) — shared reason\nx();\n");
        assert_eq!(f.suppressions[0].ids.len(), 2);
    }
}
