//! The pattern lints: masked-text matchers for the invariants PRs 2–6 established.

use crate::diag::{Diagnostic, Severity};
use crate::lints::{Crates, Lint, LintSpec};
use crate::source::{FileKind, SourceFile};

const ALL_KINDS: &[FileKind] = &[
    FileKind::Lib,
    FileKind::Bin,
    FileKind::Test,
    FileKind::Example,
    FileKind::Bench,
];
const CODE_KINDS: &[FileKind] = &[FileKind::Lib, FileKind::Bin];
const LIB_ONLY: &[FileKind] = &[FileKind::Lib];

/// A lint driven by a site-finder function over the masked text.
pub struct PatternLint {
    spec: &'static LintSpec,
    finder: fn(&SourceFile) -> Vec<(usize, String)>,
}

impl Lint for PatternLint {
    fn spec(&self) -> &'static LintSpec {
        self.spec
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (line, message) in (self.finder)(file) {
            out.push(Diagnostic {
                lint: self.spec.id.to_string(),
                severity: self.spec.severity,
                file: file.rel_path.clone(),
                line,
                message,
            });
        }
    }
}

/// Byte positions of `needle` in `haystack`, with a word boundary before needles
/// that *start* with an identifier character (so `println!` does not also match
/// inside `eprintln!`).  Needles starting with `.` skip the check — `v.unwrap()`
/// is legitimately preceded by its receiver.
fn find_word(haystack: &str, needle: &str) -> Vec<usize> {
    let bytes = haystack.as_bytes();
    let needs_boundary = needle
        .bytes()
        .next()
        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
    let mut out = Vec::new();
    let mut search = 0usize;
    while let Some(off) = haystack[search..].find(needle) {
        let at = search + off;
        search = at + 1;
        if needs_boundary
            && at > 0
            && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_')
        {
            continue;
        }
        out.push(at);
    }
    out
}

/// Positions of `.unwrap()` / `.expect(` calls, with the matched consumer name.
fn panic_consumers(masked: &str) -> Vec<(usize, &'static str)> {
    let mut out: Vec<(usize, &'static str)> = find_word(masked, ".unwrap()")
        .into_iter()
        .map(|p| (p, ".unwrap()"))
        .collect();
    out.extend(
        find_word(masked, ".expect(")
            .into_iter()
            .map(|p| (p, ".expect(…)")),
    );
    out.sort_unstable();
    out
}

/// Does the code immediately before `pos` (ignoring whitespace) end with a no-argument
/// std lock acquisition (`.lock()` / `.read()` / `.write()`)?
fn preceded_by_lock_call(masked: &str, pos: usize) -> Option<&'static str> {
    let bytes = masked.as_bytes();
    let mut j = pos;
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    for method in ["lock()", "read()", "write()"] {
        if masked[..j].ends_with(method) {
            let start = j - method.len();
            // Require a method call (`x.lock()`), not a free function `lock()`.
            if start > 0 && bytes[start - 1] == b'.' {
                return Some(method);
            }
        }
    }
    None
}

fn lock_poison_sites(file: &SourceFile) -> Vec<(usize, String)> {
    panic_consumers(&file.masked)
        .into_iter()
        .filter_map(|(pos, consumer)| {
            preceded_by_lock_call(&file.masked, pos).map(|method| {
                (
                    file.line_of(pos),
                    format!(
                        ".{method}{consumer} propagates std lock poisoning: one panicking \
                         holder turns every later acquisition into a panic cascade. Use \
                         `.unwrap_or_else(|p| p.into_inner())` (the registry/service \
                         pattern), the parking_lot shim, or `nc_serve::lockcheck`."
                    ),
                )
            })
        })
        .collect()
}

static LOCK_POISON: LintSpec = LintSpec {
    id: "lock-poison",
    severity: Severity::Error,
    summary:
        "`.lock()/.read()/.write()` followed by `.unwrap()`/`.expect()` on std sync primitives",
    // Poison cascades make *tests* flaky and misleading too — one panicking assertion
    // hides the real failure behind `PoisonError` noise — so test code is in scope.
    include_tests: true,
    crates: Crates::All,
    include_compat: false,
    kinds: ALL_KINDS,
};

/// `lock-poison`: poison-propagating lock acquisitions (PR 6's poison-free locking
/// invariant).
pub fn lock_poison() -> PatternLint {
    PatternLint {
        spec: &LOCK_POISON,
        finder: lock_poison_sites,
    }
}

fn unbounded_channel_sites(file: &SourceFile) -> Vec<(usize, String)> {
    let mut sites = find_word(&file.masked, "mpsc::channel()");
    sites.extend(find_word(&file.masked, "mpsc::channel::<"));
    sites.sort_unstable();
    sites
        .into_iter()
        .map(|pos| {
            (
                file.line_of(pos),
                "unbounded `mpsc::channel()` in the serving tier: queues must be bounded \
                 so overload sheds (`ServeError::Overloaded`) instead of growing memory \
                 without limit. Use `mpsc::sync_channel(n)`."
                    .to_string(),
            )
        })
        .collect()
}

static UNBOUNDED_CHANNEL: LintSpec = LintSpec {
    id: "unbounded-channel",
    severity: Severity::Error,
    summary: "unbounded `mpsc::channel()` in `crates/serve` non-test code",
    include_tests: false,
    crates: Crates::Only(&["serve"]),
    include_compat: false,
    kinds: CODE_KINDS,
};

/// `unbounded-channel`: the PR-6 bounded-queue/backpressure invariant.
pub fn unbounded_channel() -> PatternLint {
    PatternLint {
        spec: &UNBOUNDED_CHANNEL,
        finder: unbounded_channel_sites,
    }
}

fn wall_clock_sites(file: &SourceFile) -> Vec<(usize, String)> {
    let mut sites: Vec<(usize, &str)> = find_word(&file.masked, "Instant::now(")
        .into_iter()
        .map(|p| (p, "Instant::now()"))
        .collect();
    sites.extend(
        find_word(&file.masked, "SystemTime::now(")
            .into_iter()
            .map(|p| (p, "SystemTime::now()")),
    );
    sites.sort_unstable();
    sites
        .into_iter()
        .map(|(pos, call)| {
            (
                file.line_of(pos),
                format!(
                    "{call} in a deterministic crate: estimates are a pure function of \
                     (model, query, seed) — wall-clock reads risk leaking timing into \
                     results. If this only feeds timing stats, say so in a justified \
                     `nc-lint: allow(wall-clock-in-core)`."
                ),
            )
        })
        .collect()
}

static WALL_CLOCK: LintSpec = LintSpec {
    id: "wall-clock-in-core",
    severity: Severity::Error,
    summary: "`Instant::now`/`SystemTime::now` in the deterministic crates (neurocard/nn/sampler)",
    include_tests: false,
    crates: Crates::Only(&["neurocard", "nn", "sampler"]),
    include_compat: false,
    kinds: LIB_ONLY,
};

/// `wall-clock-in-core`: the bit-identity determinism contract (PRs 3–5).
pub fn wall_clock_in_core() -> PatternLint {
    PatternLint {
        spec: &WALL_CLOCK,
        finder: wall_clock_sites,
    }
}

fn panic_site_list(file: &SourceFile) -> Vec<(usize, String)> {
    let masked = &file.masked;
    let mut sites: Vec<(usize, &str)> = panic_consumers(masked)
        .into_iter()
        .map(|(p, c)| (p, c))
        .collect();
    for mac in ["panic!(", "todo!(", "unimplemented!("] {
        sites.extend(find_word(masked, mac).into_iter().map(|p| (p, mac)));
    }
    sites.sort_unstable();
    sites
        .into_iter()
        .map(|(pos, what)| {
            (
                file.line_of(pos),
                format!(
                    "`{}` in serving-tier library code: the request path answers with typed \
                     `ServeError`s and must never unwind (a panic costs the scratch and the \
                     reply). Return an error, or justify a startup/shutdown-path use with \
                     `nc-lint: allow(panic-in-serving)`.",
                    what.trim_end_matches('(')
                ),
            )
        })
        .collect()
}

static PANIC_IN_SERVING: LintSpec = LintSpec {
    id: "panic-in-serving",
    severity: Severity::Error,
    summary: "`unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in `crates/serve` library code",
    include_tests: false,
    crates: Crates::Only(&["serve"]),
    include_compat: false,
    kinds: LIB_ONLY,
};

/// `panic-in-serving`: the PR-6 typed-errors-on-the-request-path invariant.
pub fn panic_in_serving() -> PatternLint {
    PatternLint {
        spec: &PANIC_IN_SERVING,
        finder: panic_site_list,
    }
}

fn sleep_sites(file: &SourceFile) -> Vec<(usize, String)> {
    find_word(&file.masked, "thread::sleep(")
        .into_iter()
        .map(|pos| {
            (
                file.line_of(pos),
                "raw `thread::sleep` in serving-tier library code: it blocks an I/O or \
                 worker thread (stalling every connection it multiplexes) and bypasses \
                 the injectable clock, so chaos runs cannot observe or replay the delay. \
                 Route waits through `FaultInjector::sleep`, or justify a deliberate \
                 blocking wait with `nc-lint: allow(sleep-in-serving)`."
                    .to_string(),
            )
        })
        .collect()
}

static SLEEP_IN_SERVING: LintSpec = LintSpec {
    id: "sleep-in-serving",
    severity: Severity::Error,
    summary: "raw `thread::sleep` in `crates/serve` or `crates/pipeline` library code",
    include_tests: false,
    crates: Crates::Only(&["serve", "pipeline"]),
    include_compat: false,
    kinds: LIB_ONLY,
};

/// `sleep-in-serving`: the PR-8 injectable-clock invariant — serving-tier delays go
/// through [`FaultInjector::sleep`] so chaos schedules stay replayable.
pub fn sleep_in_serving() -> PatternLint {
    PatternLint {
        spec: &SLEEP_IN_SERVING,
        finder: sleep_sites,
    }
}

fn print_sites(file: &SourceFile) -> Vec<(usize, String)> {
    let mut sites: Vec<(usize, &str)> = Vec::new();
    for mac in ["println!(", "eprintln!(", "dbg!("] {
        sites.extend(find_word(&file.masked, mac).into_iter().map(|p| (p, mac)));
    }
    sites.sort_unstable();
    sites
        .into_iter()
        .map(|(pos, mac)| {
            (
                file.line_of(pos),
                format!(
                    "`{}` in library code: libraries return data, binaries print it \
                     (stray output corrupts bench JSON and server stdout protocols).",
                    mac.trim_end_matches('(')
                ),
            )
        })
        .collect()
}

static PRINT_IN_LIB: LintSpec = LintSpec {
    id: "print-in-lib",
    severity: Severity::Error,
    summary: "`println!`/`eprintln!`/`dbg!` in library code",
    include_tests: false,
    // `bench`'s lib is the CLI harness layer shared by the experiment binaries —
    // progress/warning output is its contract, not an accident.
    crates: Crates::Except(&["bench"]),
    include_compat: false,
    kinds: LIB_ONLY,
};

/// `print-in-lib`: keep library crates silent.
pub fn print_in_lib() -> PatternLint {
    PatternLint {
        spec: &PRINT_IN_LIB,
        finder: print_sites,
    }
}

fn intrinsics_sites(file: &SourceFile) -> Vec<(usize, String)> {
    // The dispatch module is the one legal home for intrinsics: it owns the runtime
    // CPU probe, the `#[target_feature]` safety obligations, and the kernel-vs-reference
    // bit-identity tests.  Everything else calls through its safe dispatched wrappers.
    if file.rel_path.ends_with("crates/nn/src/kernel.rs") {
        return Vec::new();
    }
    let mut sites: Vec<(usize, &str)> = Vec::new();
    for path in ["core::arch", "std::arch"] {
        sites.extend(find_word(&file.masked, path).into_iter().map(|p| (p, path)));
    }
    sites.sort_unstable();
    sites
        .into_iter()
        .map(|(pos, path)| {
            (
                file.line_of(pos),
                format!(
                    "`{path}` outside `crates/nn/src/kernel.rs`: SIMD intrinsics live \
                     behind the kernel dispatch module so the exact tier stays scalar \
                     and bit-reproducible, unsafe target-feature contracts are audited \
                     in one place, and every arch path has a portable fallback. Call the \
                     `nc_nn::kernel` wrappers, or justify a new home with \
                     `nc-lint: allow(intrinsics-outside-kernel)`."
                ),
            )
        })
        .collect()
}

static INTRINSICS_OUTSIDE_KERNEL: LintSpec = LintSpec {
    id: "intrinsics-outside-kernel",
    severity: Severity::Error,
    summary: "`core::arch`/`std::arch` intrinsics outside the kernel dispatch module",
    include_tests: true,
    crates: Crates::All,
    include_compat: false,
    kinds: ALL_KINDS,
};

/// `intrinsics-outside-kernel`: the PR-9 SIMD containment invariant — arch-specific
/// intrinsics are only legal inside `crates/nn/src/kernel.rs`.
pub fn intrinsics_outside_kernel() -> PatternLint {
    PatternLint {
        spec: &INTRINSICS_OUTSIDE_KERNEL,
        finder: intrinsics_sites,
    }
}
