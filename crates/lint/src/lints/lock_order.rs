//! `lock-order`: a static approximation of lock-hierarchy checking.
//!
//! Per function, the lint tracks `let <guard> = <receiver>.lock()/.read()/.write()`
//! bindings (no-argument acquisitions on sync primitives).  A guard is considered
//! held from its binding until its enclosing block closes or an explicit
//! `drop(<guard>)`.  Every acquisition performed while another guard is held records
//! a directed edge *held-lock → acquired-lock*; lock identity is approximated by the
//! receiver's final path segment, qualified by crate (`serve::state`), so the same
//! field name used across functions unifies into one node.  After the whole workspace
//! is scanned, any cycle in the edge graph — the classic ABBA inversion and longer
//! loops — is reported with the witnessing acquisition sites.
//!
//! Known approximations (deliberate — this is a lint, not a prover): acquisitions
//! without a `let` binding are treated as statement-transient and never "held";
//! guards moved into closures/spawned threads are tracked as if acquired inline
//! (conservative); two distinct locks sharing a field name in one crate unify (may
//! over-approximate); helper functions that acquire internally (e.g. a `state_lock()`
//! wrapper) are invisible at their call sites.  The runtime twin —
//! `nc_serve::lockcheck`, thread-local acquisition stacks active in every debug test
//! run — covers the dynamic reality the static pass cannot see.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Severity};
use crate::lints::{Crates, Lint, LintSpec};
use crate::source::{match_brace, FileKind, SourceFile};

static LOCK_ORDER: LintSpec = LintSpec {
    id: "lock-order",
    severity: Severity::Error,
    summary: "cyclic \"acquires B while holding A\" relationships across the workspace",
    include_tests: false,
    crates: Crates::All,
    include_compat: false,
    kinds: &[FileKind::Lib, FileKind::Bin],
};

/// Where an edge was witnessed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Witness {
    from_site: (String, usize),
    to_site: (String, usize),
}

/// The workspace-level lock-order lint (see module docs).
pub struct LockOrder {
    /// (held-label, acquired-label) → first witness.
    edges: BTreeMap<(String, String), Witness>,
}

impl LockOrder {
    /// Fresh state for one run.
    pub fn new() -> Self {
        LockOrder {
            edges: BTreeMap::new(),
        }
    }
}

impl Default for LockOrder {
    fn default() -> Self {
        Self::new()
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// One lock acquisition found in a function body.
struct Acquisition {
    pos: usize,
    label: String,
    /// Binding name when the guard is `let`-bound (held until scope end / drop).
    binding: Option<String>,
}

/// Extracts the receiver path ending at `dot` (the `.` of `.lock()`), returning its
/// final segment — the lock's identity approximation.
fn receiver_label(masked: &str, dot: usize) -> Option<(usize, String)> {
    let b = masked.as_bytes();
    let mut j = dot;
    while j > 0 {
        let c = b[j - 1];
        if is_ident_byte(c) || c == b'.' || c == b':' {
            j -= 1;
        } else {
            break;
        }
    }
    let path = masked[j..dot].trim_matches(|c| c == '.' || c == ':');
    if path.is_empty() {
        return None;
    }
    let last = path
        .rsplit(|c| c == '.' || c == ':')
        .find(|s| !s.is_empty())?;
    // `self.lock()` or a bare numeric (tuple index) tells us nothing.
    if last == "self" || last.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    Some((j, last.to_string()))
}

/// If the statement containing the acquisition at `recv_start` is a `let` binding,
/// returns the bound name.
fn let_binding(masked: &str, recv_start: usize, body_start: usize) -> Option<String> {
    let b = masked.as_bytes();
    let mut s = recv_start;
    while s > body_start {
        match b[s - 1] {
            b';' | b'{' | b'}' => break,
            _ => s -= 1,
        }
    }
    let prefix = masked[s..recv_start].trim();
    let rest = prefix.strip_prefix("let ")?;
    // `let mut name` / `let name: Type` / `let name =` — destructuring patterns are
    // skipped (their guards are treated as transient).
    let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || !prefix.ends_with('=') {
        return None;
    }
    Some(name)
}

/// Scans one function body for acquisitions and records held→acquired edges.
fn scan_body(lint: &mut LockOrder, file: &SourceFile, body_start: usize, body_end: usize) {
    let masked = &file.masked;
    let b = masked.as_bytes();

    // Collect acquisitions in order.
    let mut acquisitions: Vec<Acquisition> = Vec::new();
    for method in [".lock()", ".read()", ".write()"] {
        let mut search = body_start;
        while let Some(off) = masked[search..body_end].find(method) {
            let dot = search + off;
            search = dot + 1;
            if file.is_test_line(file.line_of(dot)) {
                continue;
            }
            if let Some((recv_start, label)) = receiver_label(masked, dot) {
                acquisitions.push(Acquisition {
                    pos: dot,
                    label,
                    binding: let_binding(masked, recv_start, body_start),
                });
            }
        }
    }
    acquisitions.sort_by_key(|a| a.pos);
    if acquisitions.is_empty() {
        return;
    }

    // Drop sites: `drop(name)`.
    let mut drops: Vec<(usize, String)> = Vec::new();
    let mut search = body_start;
    while let Some(off) = masked[search..body_end].find("drop(") {
        let at = search + off;
        search = at + 1;
        if at > 0 && is_ident_byte(b[at - 1]) {
            continue;
        }
        let inner_start = at + "drop(".len();
        if let Some(close) = masked[inner_start..body_end].find(')') {
            let name = masked[inner_start..inner_start + close].trim();
            if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty() {
                drops.push((at, name.to_string()));
            }
        }
    }

    // Replay braces / drops / acquisitions in order, maintaining the held set.
    struct Held {
        label: String,
        line: usize,
        depth: usize,
        binding: String,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut acq_iter = acquisitions.into_iter().peekable();
    let mut drop_iter = drops.into_iter().peekable();
    let mut depth = 0usize;
    for (pos, &ch) in b[body_start..body_end].iter().enumerate() {
        let pos = body_start + pos;
        while let Some((dpos, _)) = drop_iter.peek() {
            if *dpos > pos {
                break;
            }
            let (_, name) = drop_iter.next().expect("peeked");
            if let Some(i) = held.iter().rposition(|h| h.binding == name) {
                held.remove(i);
            }
        }
        while let Some(acq) = acq_iter.peek() {
            if acq.pos > pos {
                break;
            }
            let acq = acq_iter.next().expect("peeked");
            let line = file.line_of(acq.pos);
            for h in &held {
                if h.label == acq.label {
                    // Same-name nesting is usually two *instances* of one shape
                    // (e.g. two models' stats rings); flagging it would cry wolf.
                    continue;
                }
                let key = (
                    format!("{}::{}", file.crate_name, h.label),
                    format!("{}::{}", file.crate_name, acq.label),
                );
                lint.edges.entry(key).or_insert_with(|| Witness {
                    from_site: (file.rel_path.clone(), h.line),
                    to_site: (file.rel_path.clone(), line),
                });
            }
            if let Some(binding) = acq.binding {
                held.push(Held {
                    label: acq.label,
                    line,
                    depth,
                    binding,
                });
            }
        }
        match ch {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
            }
            _ => {}
        }
    }
}

impl Lint for LockOrder {
    fn spec(&self) -> &'static LintSpec {
        &LOCK_ORDER
    }

    fn check_file(&mut self, file: &SourceFile, _out: &mut Vec<Diagnostic>) {
        let masked = file.masked.clone();
        let b = masked.as_bytes();
        let mut search = 0usize;
        while let Some(off) = masked[search..].find("fn ") {
            let at = search + off;
            search = at + 1;
            if at > 0 && is_ident_byte(b[at - 1]) {
                continue;
            }
            if file.is_test_line(file.line_of(at)) {
                continue;
            }
            // Find the body brace; a `;` first means a bodiless declaration.
            let mut k = at;
            while k < b.len() && b[k] != b'{' && b[k] != b';' {
                k += 1;
            }
            if k >= b.len() || b[k] == b';' {
                continue;
            }
            if let Some(close) = match_brace(&masked, k) {
                scan_body(self, file, k + 1, close);
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<Diagnostic>) {
        // Find cycles: for every node, DFS over edges; report each strongly-connected
        // cluster of ≥ 2 locks once (keyed by its sorted node set).
        let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in self.edges.keys().map(|(a, b)| (a.as_str(), b.as_str())) {
            adjacency.entry(from).or_default().push(to);
        }
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        for start in adjacency.keys().copied().collect::<Vec<_>>() {
            let mut cycle_nodes: BTreeSet<&str> = BTreeSet::new();
            // Nodes reachable from `start` that can also reach it back form its cycle
            // cluster.
            let forward = reachable(&adjacency, start);
            for node in &forward {
                if *node != start && reachable(&adjacency, node).contains(start) {
                    cycle_nodes.insert(node);
                }
            }
            if cycle_nodes.is_empty() {
                continue;
            }
            cycle_nodes.insert(start);
            let key: Vec<String> = cycle_nodes.iter().map(|s| s.to_string()).collect();
            if !reported.insert(key.clone()) {
                continue;
            }
            // Render every in-cluster edge's witness so both halves of an inversion
            // are visible in one diagnostic.
            let mut lines = Vec::new();
            let mut anchor: Option<(String, usize)> = None;
            for ((from, to), w) in &self.edges {
                if cycle_nodes.contains(from.as_str()) && cycle_nodes.contains(to.as_str()) {
                    lines.push(format!(
                        "{from} (held at {}:{}) then {to} (acquired at {}:{})",
                        w.from_site.0, w.from_site.1, w.to_site.0, w.to_site.1
                    ));
                    if anchor.is_none() {
                        anchor = Some(w.to_site.clone());
                    }
                }
            }
            let (file, line) = anchor.unwrap_or_else(|| (String::from("<workspace>"), 0));
            out.push(Diagnostic {
                lint: LOCK_ORDER.id.to_string(),
                severity: LOCK_ORDER.severity,
                file,
                line,
                message: format!(
                    "lock-order cycle between {{{}}} — a thread in each order deadlocks: {}",
                    key.join(", "),
                    lines.join("; ")
                ),
            });
        }
    }
}

fn reachable<'a>(adjacency: &BTreeMap<&'a str, Vec<&'a str>>, start: &'a str) -> BTreeSet<&'a str> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        for next in adjacency.get(n).into_iter().flatten() {
            if seen.insert(*next) {
                stack.push(next);
            }
        }
    }
    seen
}
