//! The lint registry: the `Lint` trait, per-lint scoping, and the catalogue.

pub mod lock_order;
pub mod patterns;

use crate::diag::{Diagnostic, Severity};
use crate::source::{FileKind, SourceFile};

/// Which crates a lint applies to (crate names as the walker reports them, e.g.
/// `"serve"`, `"neurocard"`, `"compat/rand"`).
#[derive(Debug, Clone, Copy)]
pub enum Crates {
    /// Every crate (subject to `include_compat`).
    All,
    /// Every crate except these (subject to `include_compat`).
    Except(&'static [&'static str]),
    /// Only these crates.
    Only(&'static [&'static str]),
}

/// The static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintSpec {
    /// Stable id used in diagnostics and `allow(...)` directives.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line description (rendered by `--list` and docs).
    pub summary: &'static str,
    /// Whether findings inside `#[cfg(test)]` / `mod tests` regions count.
    pub include_tests: bool,
    /// Crate scope.
    pub crates: Crates,
    /// Whether the hand-written dependency shims under `crates/compat` are in scope
    /// (they deliberately emulate *external* crates' innards, locks included).
    pub include_compat: bool,
    /// File kinds in scope.
    pub kinds: &'static [FileKind],
}

impl LintSpec {
    /// Does this lint look at `file` at all?
    pub fn applies_to(&self, file: &SourceFile) -> bool {
        if !self.include_compat && file.crate_name.starts_with("compat/") {
            return false;
        }
        let crate_ok = match self.crates {
            Crates::All => true,
            Crates::Except(list) => !list.contains(&file.crate_name.as_str()),
            Crates::Only(list) => list.contains(&file.crate_name.as_str()),
        };
        crate_ok && self.kinds.contains(&file.kind)
    }
}

/// One lint: a spec plus per-file (and optionally end-of-run) checking.
pub trait Lint {
    /// The lint's static description.
    fn spec(&self) -> &'static LintSpec;
    /// Examines one in-scope file.  Test-region filtering happens in the engine —
    /// report everything found.
    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>);
    /// Runs after every file was seen (workspace-level lints emit here).
    fn finish(&mut self, _out: &mut Vec<Diagnostic>) {}
}

/// The full catalogue, fresh state per run.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(patterns::lock_poison()),
        Box::new(patterns::unbounded_channel()),
        Box::new(patterns::wall_clock_in_core()),
        Box::new(patterns::panic_in_serving()),
        Box::new(patterns::sleep_in_serving()),
        Box::new(patterns::print_in_lib()),
        Box::new(patterns::intrinsics_outside_kernel()),
        Box::new(lock_order::LockOrder::new()),
    ]
}

/// Every known lint id (suppressions naming anything else are errors).
pub fn known_ids() -> Vec<&'static str> {
    all_lints().iter().map(|l| l.spec().id).collect()
}
