//! The analysis driver: scope filtering, test-region exemption, suppression
//! application, directive validation.

use std::collections::HashSet;

use crate::diag::{Diagnostic, Report, Severity, Suppressed};
use crate::lints::{all_lints, known_ids};
use crate::source::SourceFile;

/// Runs every lint over `files` and folds the results into one [`Report`].
///
/// Pipeline per the registry contract: each lint sees only files its spec covers;
/// findings inside test regions are discarded unless the lint opts in
/// (`include_tests`); `finish()` runs once after all files (workspace lints emit
/// there, and those findings skip the test filter — they already filtered at
/// collection time).  Then suppression directives are validated (malformed ones and
/// unknown lint ids are themselves error diagnostics under the `suppression` id) and
/// matching findings move from `diagnostics` to `suppressed`, carrying the written
/// justification into the report.
pub fn analyze(files: &[SourceFile]) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Default::default()
    };

    let mut lints = all_lints();
    let mut per_lint_test_exempt: Vec<Diagnostic> = Vec::new();
    for lint in &mut lints {
        let spec = lint.spec();
        for file in files.iter().filter(|f| spec.applies_to(f)) {
            let mut found = Vec::new();
            lint.check_file(file, &mut found);
            for d in found {
                if !spec.include_tests && file.is_test_line(d.line) {
                    continue;
                }
                per_lint_test_exempt.push(d);
            }
        }
    }
    // Workspace-level findings (lock-order cycles) arrive here.
    for lint in &mut lints {
        lint.finish(&mut per_lint_test_exempt);
    }
    report.diagnostics = per_lint_test_exempt;

    // Directive validation: malformed directives and unknown ids are findings.
    let known: HashSet<&'static str> = known_ids().into_iter().collect();
    for file in files {
        for err in &file.suppression_errors {
            report.diagnostics.push(Diagnostic {
                lint: "suppression".to_string(),
                severity: Severity::Error,
                file: file.rel_path.clone(),
                line: err.line,
                message: err.message.clone(),
            });
        }
        for sup in &file.suppressions {
            for id in &sup.ids {
                if !known.contains(id.as_str()) {
                    report.diagnostics.push(Diagnostic {
                        lint: "suppression".to_string(),
                        severity: Severity::Error,
                        file: file.rel_path.clone(),
                        line: sup.line,
                        message: format!(
                            "allow({id}) names an unknown lint (known: {})",
                            known_ids().join(", ")
                        ),
                    });
                }
            }
        }
    }

    // Apply suppressions: a justified allow on a finding's line moves it aside.
    let mut live = Vec::with_capacity(report.diagnostics.len());
    for d in report.diagnostics.drain(..) {
        let sup = files.iter().find(|f| f.rel_path == d.file).and_then(|f| {
            f.suppressions
                .iter()
                .find(|s| s.target_line == d.line && s.ids.iter().any(|id| id == &d.lint))
        });
        match sup {
            Some(s) => report.suppressed.push(Suppressed {
                lint: d.lint,
                file: d.file,
                line: d.line,
                justification: s.justification.clone(),
            }),
            None => live.push(d),
        }
    }
    report.diagnostics = live;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(
            format!("crates/{crate_name}/src/lib.rs"),
            crate_name,
            FileKind::Lib,
            src,
        )
    }

    #[test]
    fn suppressed_finding_moves_to_suppressed_list() {
        let src = "fn f(m: &std::sync::Mutex<i32>) {\n    // nc-lint: allow(lock-poison) — unit-test fixture, lock cannot poison\n    let _g = m.lock().unwrap();\n}\n";
        let report = analyze(&[lib_file("neurocard", src)]);
        assert!(report.ok(), "diags: {:?}", report.diagnostics);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].lint, "lock-poison");
        assert!(report.suppressed[0].justification.contains("fixture"));
    }

    #[test]
    fn unknown_allow_id_is_an_error() {
        let src = "// nc-lint: allow(no-such-lint) — whatever\nfn f() {}\n";
        let report = analyze(&[lib_file("neurocard", src)]);
        assert!(!report.ok());
        assert_eq!(report.diagnostics[0].lint, "suppression");
        assert!(report.diagnostics[0].message.contains("unknown lint"));
    }

    #[test]
    fn missing_justification_leaves_finding_live_and_adds_error() {
        let src = "fn f(m: &std::sync::Mutex<i32>) {\n    // nc-lint: allow(lock-poison)\n    let _g = m.lock().unwrap();\n}\n";
        let report = analyze(&[lib_file("neurocard", src)]);
        let lints: Vec<&str> = report.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        assert!(lints.contains(&"lock-poison"), "finding must stay live");
        assert!(
            lints.contains(&"suppression"),
            "and the broken allow reported"
        );
        assert!(report.suppressed.is_empty());
    }
}
