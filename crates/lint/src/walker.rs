//! Workspace file discovery: walks `crates/*` (and `crates/compat/*`), classifying
//! every `.rs` file by crate and role.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::{FileKind, SourceFile};

/// Classifies `rel` (path relative to the crate root, e.g. `src/bin/serve.rs`).
fn classify(rel: &Path) -> FileKind {
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match parts.next().as_deref() {
        Some("src") => match parts.next().as_deref() {
            Some("bin") => FileKind::Bin,
            Some("main.rs") => FileKind::Bin,
            _ => FileKind::Lib,
        },
        Some("tests") => FileKind::Test,
        Some("examples") => FileKind::Example,
        Some("benches") => FileKind::Bench,
        Some("build.rs") => FileKind::Bin,
        _ => FileKind::Lib,
    }
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            // Build output never counts.
            if name == "target" {
                continue;
            }
            rust_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks one crate directory, producing a [`SourceFile`] per `.rs` file.
fn walk_crate(
    workspace_root: &Path,
    crate_dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut paths = Vec::new();
    rust_files_under(crate_dir, &mut paths)?;
    paths.sort();
    for path in paths {
        let rel_in_crate = path.strip_prefix(crate_dir).unwrap_or(&path);
        let rel_in_workspace = path.strip_prefix(workspace_root).unwrap_or(&path);
        let source = fs::read_to_string(&path)?;
        out.push(SourceFile::new(
            rel_in_workspace.to_string_lossy().replace('\\', "/"),
            crate_name,
            classify(rel_in_crate),
            &source,
        ));
    }
    Ok(())
}

/// Walks the whole workspace rooted at `root`: every `crates/<name>` member plus the
/// `crates/compat/<name>` shims (crate name `compat/<name>`, so lints can scope them
/// out).  Deterministic order (sorted paths) so reports diff cleanly.
pub fn walk_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name == "compat" {
            let mut shims: Vec<PathBuf> = fs::read_dir(&member)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            shims.sort();
            for shim in shims {
                let shim_name = shim
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                walk_crate(root, &shim, &format!("compat/{shim_name}"), &mut out)?;
            }
        } else {
            walk_crate(root, &member, &name, &mut out)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::Lib);
        assert_eq!(classify(Path::new("src/service.rs")), FileKind::Lib);
        assert_eq!(classify(Path::new("src/bin/serve.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("src/main.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("tests/restart.rs")), FileKind::Test);
        assert_eq!(classify(Path::new("examples/demo.rs")), FileKind::Example);
        assert_eq!(classify(Path::new("benches/query.rs")), FileKind::Bench);
        assert_eq!(classify(Path::new("build.rs")), FileKind::Bin);
    }
}
