//! `nc-lint`: workspace-native static analysis for the neurocard workspace.
//!
//! The toolchain here is deliberately dependency-free (every external-looking crate
//! in this workspace is a hand-written shim), so this is not a rustc driver: it is a
//! purpose-built pass over the source tree that enforces the handful of invariants
//! the previous PRs established and that generic tooling cannot know about —
//! poison-free locking, bounded serving queues, determinism of the estimator core,
//! typed errors on the request path, silent libraries, and a consistent lock
//! hierarchy.
//!
//! Layers:
//! - [`lexer`]: masks comments/strings so lints never fire on text;
//! - [`source`]: per-file model — line table, `#[cfg(test)]`/`mod tests` regions,
//!   `// nc-lint: allow(<id>) — <justification>` suppressions (justification is
//!   mandatory);
//! - [`lints`]: the registry and the six lints;
//! - [`engine`]: scope filtering, suppression application, report assembly;
//! - [`walker`]: workspace discovery;
//! - [`diag`]: typed diagnostics, human rendering, `LINT_report.json`.
//!
//! Run as `cargo run -p nc-lint -- --workspace`; CI gates on its exit status.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod source;
pub mod walker;

use std::io;
use std::path::Path;

pub use diag::{Diagnostic, Report, Severity, Suppressed};
pub use source::{FileKind, SourceFile};

/// Analyzes pre-built [`SourceFile`]s (the test harness entry point).
pub fn analyze_files(files: &[SourceFile]) -> Report {
    engine::analyze(files)
}

/// Walks the workspace at `root` and analyzes everything found.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let files = walker::walk_workspace(root)?;
    Ok(engine::analyze(&files))
}
