//! Fixture-driven coverage for every lint: fires / suppressed / masked-by-string /
//! masked-by-comment / test-region behavior, the mandatory-justification rule, and
//! the seeded lock-order inversion the static pass must catch.
//!
//! Every planted violation lives inside a string literal in THIS file, so running
//! `nc-lint --workspace` over the real tree never sees them — which is itself a
//! live demonstration of the masking lexer the fixtures exercise.

use nc_lint::{analyze_files, FileKind, Report, SourceFile};

fn analyze_one(path: &str, krate: &str, kind: FileKind, src: &str) -> Report {
    analyze_files(&[SourceFile::new(path, krate, kind, src)])
}

fn lib(krate: &str, src: &str) -> Report {
    analyze_one(
        &format!("crates/{krate}/src/lib.rs"),
        krate,
        FileKind::Lib,
        src,
    )
}

fn ids(report: &Report) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.lint.as_str()).collect()
}

fn count(report: &Report, id: &str) -> usize {
    report.diagnostics.iter().filter(|d| d.lint == id).count()
}

// ---- lock-poison ------------------------------------------------------------

#[test]
fn lock_poison_fires_on_all_three_acquisition_methods() {
    let src = r#"fn f(m: &std::sync::Mutex<i32>, rw: &std::sync::RwLock<i32>) {
    let a = m.lock().unwrap();
    let b = rw.read().expect("poisoned");
    let c = rw
        .write()
        .unwrap();
    let _ = (a, b, c);
}
"#;
    let report = lib("neurocard", src);
    assert_eq!(count(&report, "lock-poison"), 3, "ids: {:?}", ids(&report));
    let mut lines: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == "lock-poison")
        .map(|d| d.line)
        .collect();
    lines.sort_unstable();
    // The split `.write()\n.unwrap()` anchors at the consumer, line 6.
    assert_eq!(lines, vec![2, 3, 6]);
}

#[test]
fn lock_poison_opts_into_test_regions() {
    // Unlike every other lint, lock-poison covers test code: a poisoned lock in a
    // test hides the real assertion failure behind PoisonError noise.
    let src = r#"fn fine() {}
#[cfg(test)]
mod tests {
    fn t(m: &std::sync::Mutex<i32>) {
        let _g = m.lock().unwrap();
    }
}
"#;
    let report = lib("neurocard", src);
    assert_eq!(count(&report, "lock-poison"), 1);
    assert_eq!(report.diagnostics[0].line, 5);
}

#[test]
fn lock_poison_ignores_the_poison_free_pattern_and_non_lock_unwraps() {
    let src = r#"fn f(m: &std::sync::Mutex<i32>, v: Option<i32>) {
    let a = m.lock().unwrap_or_else(|p| p.into_inner());
    let b = v.unwrap();
    let _ = (a, b);
}
"#;
    let report = lib("neurocard", src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

#[test]
fn lock_poison_skips_the_compat_shims() {
    let src = r#"fn f(m: &std::sync::Mutex<i32>) {
    let _g = m.lock().unwrap();
}
"#;
    let report = analyze_one(
        "crates/compat/parking_lot/src/lib.rs",
        "compat/parking_lot",
        FileKind::Lib,
        src,
    );
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

// ---- masking: strings and comments can never fire any lint ------------------

#[test]
fn violations_inside_strings_and_comments_are_masked() {
    let serve_src = r#"fn f() {
    let doc = "m.lock().unwrap(); mpsc::channel(); panic!(oops); println!(oops)";
    // m.lock().unwrap()  mpsc::channel()  panic!("x")  println!("x")  todo!()
    /* .read().expect("p")  unimplemented!()  dbg!(1) */
    let _ = doc;
}
"#;
    let core_src = r#"fn g() {
    let doc = "Instant::now() and SystemTime::now() are banned here";
    // Instant::now()  SystemTime::now()
    let _ = doc;
}
"#;
    let files = [
        SourceFile::new("crates/serve/src/lib.rs", "serve", FileKind::Lib, serve_src),
        SourceFile::new(
            "crates/neurocard/src/lib.rs",
            "neurocard",
            FileKind::Lib,
            core_src,
        ),
    ];
    let report = analyze_files(&files);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.files_scanned, 2);
}

// ---- unbounded-channel ------------------------------------------------------

#[test]
fn unbounded_channel_fires_in_serve_but_not_elsewhere_and_not_in_tests() {
    let src = r#"fn f() {
    let pair = std::sync::mpsc::channel();
    let typed = mpsc::channel::<u32>();
    let bounded = mpsc::sync_channel(1);
    let _ = (pair, typed, bounded);
}
"#;
    let in_serve = lib("serve", src);
    assert_eq!(count(&in_serve, "unbounded-channel"), 2);

    let elsewhere = lib("neurocard", src);
    assert_eq!(count(&elsewhere, "unbounded-channel"), 0);

    let in_tests = lib("serve", &format!("#[cfg(test)]\nmod tests {{\n{src}}}\n"));
    assert_eq!(count(&in_tests, "unbounded-channel"), 0);
}

// ---- wall-clock-in-core -----------------------------------------------------

#[test]
fn wall_clock_fires_in_deterministic_crates_only() {
    let src = r#"fn f() {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = (t0, wall);
}
"#;
    let in_core = lib("neurocard", src);
    assert_eq!(count(&in_core, "wall-clock-in-core"), 2);

    // The serving tier measures latency for a living; out of scope.
    let in_serve = lib("serve", src);
    assert_eq!(count(&in_serve, "wall-clock-in-core"), 0);

    let in_tests = lib(
        "neurocard",
        &format!("#[cfg(test)]\nmod tests {{\n{src}}}\n"),
    );
    assert!(in_tests.ok(), "diags: {:?}", in_tests.diagnostics);
}

// ---- panic-in-serving -------------------------------------------------------

#[test]
fn panic_in_serving_fires_in_lib_code_but_not_bins_or_tests() {
    let src = r#"fn f(v: Option<i32>) -> i32 {
    let a = v.unwrap();
    let b = v.expect("gone");
    panic!("boom");
    todo!();
    unimplemented!()
}
"#;
    let in_lib = lib("serve", src);
    assert_eq!(
        count(&in_lib, "panic-in-serving"),
        5,
        "diags: {:?}",
        in_lib.diagnostics
    );

    // Binaries may die loudly at startup: FileKind::Bin is out of scope.
    let in_bin = analyze_one(
        "crates/serve/src/bin/neurocard_serve.rs",
        "serve",
        FileKind::Bin,
        src,
    );
    assert_eq!(count(&in_bin, "panic-in-serving"), 0);

    let in_tests = lib("serve", &format!("#[cfg(test)]\nmod tests {{\n{src}}}\n"));
    assert_eq!(count(&in_tests, "panic-in-serving"), 0);
}

// ---- sleep-in-serving -------------------------------------------------------

#[test]
fn sleep_in_serving_fires_in_serve_lib_code_only() {
    let src = r#"fn f() {
    std::thread::sleep(std::time::Duration::from_millis(5));
    thread::sleep(BACKOFF);
    my_thread::sleep(1);
}
"#;
    let in_serve = lib("serve", src);
    assert_eq!(
        count(&in_serve, "sleep-in-serving"),
        2,
        "diags: {:?}",
        in_serve.diagnostics
    );

    // Other crates may block freely; so may serve's tests and binaries.
    let elsewhere = lib("neurocard", src);
    assert_eq!(count(&elsewhere, "sleep-in-serving"), 0);
    let in_tests = lib("serve", &format!("#[cfg(test)]\nmod tests {{\n{src}}}\n"));
    assert_eq!(count(&in_tests, "sleep-in-serving"), 0);
    let in_bin = analyze_one(
        "crates/serve/src/bin/neurocard_serve.rs",
        "serve",
        FileKind::Bin,
        src,
    );
    assert_eq!(count(&in_bin, "sleep-in-serving"), 0);
}

#[test]
fn sleep_in_serving_is_masked_inside_strings_and_comments() {
    let src = r#"fn f() {
    let doc = "thread::sleep(dur) is banned here";
    // std::thread::sleep(dur)
    let _ = doc;
}
"#;
    let report = lib("serve", src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

// ---- print-in-lib -----------------------------------------------------------

#[test]
fn print_in_lib_fires_in_libs_but_not_bench_or_binaries() {
    let src = r#"fn f() {
    println!("hi");
    eprintln!("warn");
    dbg!(1 + 1);
    my_println!("word boundary: not a match");
}
"#;
    let in_lib = lib("neurocard", src);
    assert_eq!(count(&in_lib, "print-in-lib"), 3);

    // bench's lib is the CLI harness layer; printing is its contract.
    let in_bench = lib("bench", src);
    assert_eq!(count(&in_bench, "print-in-lib"), 0);

    let in_bin = analyze_one("crates/serve/src/main.rs", "serve", FileKind::Bin, src);
    assert_eq!(count(&in_bin, "print-in-lib"), 0);
}

// ---- intrinsics-outside-kernel ----------------------------------------------

#[test]
fn intrinsics_fire_everywhere_except_the_kernel_module() {
    let src = r#"use core::arch::x86_64::_mm256_fmadd_ps;
fn f() {
    let probe = std::arch::is_x86_feature_detected!("avx2");
    let _ = probe;
}
"#;
    let in_nn = analyze_one("crates/nn/src/tensor.rs", "nn", FileKind::Lib, src);
    assert_eq!(
        count(&in_nn, "intrinsics-outside-kernel"),
        2,
        "diags: {:?}",
        in_nn.diagnostics
    );

    // Any other crate and any file kind is in scope too...
    let in_bench = analyze_one(
        "crates/bench/src/bin/figure7d.rs",
        "bench",
        FileKind::Bin,
        src,
    );
    assert_eq!(count(&in_bench, "intrinsics-outside-kernel"), 2);
    // ...including test regions (an intrinsic in a test still needs the dispatch audit).
    let in_tests = analyze_one(
        "crates/nn/src/tensor.rs",
        "nn",
        FileKind::Lib,
        &format!("#[cfg(test)]\nmod tests {{\n{src}}}\n"),
    );
    assert_eq!(count(&in_tests, "intrinsics-outside-kernel"), 2);

    // The one legal home: the kernel dispatch module.
    let in_kernel = analyze_one("crates/nn/src/kernel.rs", "nn", FileKind::Lib, src);
    assert_eq!(
        count(&in_kernel, "intrinsics-outside-kernel"),
        0,
        "diags: {:?}",
        in_kernel.diagnostics
    );
}

// ---- lock-order -------------------------------------------------------------

/// The seeded ABBA inversion: `first` takes alpha then beta, `second` takes beta
/// then alpha.  The static pass must connect the two functions into one cycle.
const ABBA: &str = r#"fn first() {
    let ga = alpha.lock();
    let gb = beta.lock();
    let _ = (ga, gb);
}
fn second() {
    let gb = beta.lock();
    let ga = alpha.lock();
    let _ = (ga, gb);
}
"#;

#[test]
fn lock_order_catches_the_seeded_abba_inversion() {
    let report = lib("serve", ABBA);
    assert_eq!(count(&report, "lock-order"), 1, "ids: {:?}", ids(&report));
    let d = &report.diagnostics[0];
    assert!(d.message.contains("serve::alpha"), "msg: {}", d.message);
    assert!(d.message.contains("serve::beta"), "msg: {}", d.message);
    assert!(d.message.contains("deadlocks"), "msg: {}", d.message);
    // Anchored at the first witness: beta acquired while alpha is held (line 3).
    assert_eq!((d.file.as_str(), d.line), ("crates/serve/src/lib.rs", 3));
}

#[test]
fn lock_order_accepts_a_consistent_hierarchy() {
    let src = r#"fn first() {
    let ga = alpha.lock();
    let gb = beta.lock();
    let _ = (ga, gb);
}
fn second() {
    let ga = alpha.lock();
    let gb = beta.lock();
    let _ = (ga, gb);
}
"#;
    let report = lib("serve", src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

#[test]
fn lock_order_respects_drop_and_scope_release() {
    // Both `first` variants release alpha before taking beta, so only the
    // beta→alpha edge from `second` exists — one edge is not a cycle.
    let src = r#"fn first_drops() {
    let ga = alpha.lock();
    drop(ga);
    let gb = beta.lock();
    let _ = gb;
}
fn first_scopes() {
    {
        let ga = alpha.lock();
        let _ = ga;
    }
    let gb = beta.lock();
    let _ = gb;
}
fn second() {
    let gb = beta.lock();
    let ga = alpha.lock();
    let _ = (ga, gb);
}
"#;
    let report = lib("serve", src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

#[test]
fn lock_order_treats_unbound_guards_as_transient() {
    // `alpha.lock().insert(1)` holds its guard only for the statement, so the
    // later beta acquisition is NOT performed "while holding alpha".
    let src = r#"fn first() {
    alpha.lock().insert(1);
    let gb = beta.lock();
    let _ = gb;
}
fn second() {
    let gb = beta.lock();
    alpha.lock().insert(2);
    let _ = gb;
}
"#;
    let report = lib("serve", src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

#[test]
fn lock_order_labels_are_crate_qualified() {
    // The same field names in two crates are different locks — no false cycle.
    let files = [
        SourceFile::new(
            "crates/serve/src/lib.rs",
            "serve",
            FileKind::Lib,
            "fn f() {\n    let ga = alpha.lock();\n    let gb = beta.lock();\n    let _ = (ga, gb);\n}\n",
        ),
        SourceFile::new(
            "crates/nn/src/lib.rs",
            "nn",
            FileKind::Lib,
            "fn g() {\n    let gb = beta.lock();\n    let ga = alpha.lock();\n    let _ = (ga, gb);\n}\n",
        ),
    ];
    let report = analyze_files(&files);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

#[test]
fn lock_order_ignores_inversions_confined_to_test_code() {
    let src = format!("#[cfg(test)]\nmod tests {{\n{ABBA}}}\n");
    let report = lib("serve", &src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
}

#[test]
fn lock_order_cycle_is_suppressible_at_its_anchor() {
    // Same ABBA, with a justified allow on the anchor line (beta-while-alpha).
    let src = r#"fn first() {
    let ga = alpha.lock();
    let gb = beta.lock(); // nc-lint: allow(lock-order) — fixture: inversion is the point
    let _ = (ga, gb);
}
fn second() {
    let gb = beta.lock();
    let ga = alpha.lock();
    let _ = (ga, gb);
}
"#;
    let report = lib("serve", src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].lint, "lock-order");
}

// ---- suppression machinery --------------------------------------------------

#[test]
fn every_pattern_lint_is_suppressible_with_a_justified_allow() {
    let cases: [(&str, &str, &str); 7] = [
        (
            "nn",
            "intrinsics-outside-kernel",
            "use core::arch::x86_64::__m256;",
        ),
        ("neurocard", "lock-poison", "let g = m.lock().unwrap();"),
        (
            "serve",
            "unbounded-channel",
            "let pair = mpsc::channel::<u32>();",
        ),
        (
            "neurocard",
            "wall-clock-in-core",
            "let t = std::time::Instant::now();",
        ),
        ("serve", "panic-in-serving", "panic!(\"boom\");"),
        (
            "serve",
            "sleep-in-serving",
            "std::thread::sleep(std::time::Duration::from_millis(1));",
        ),
        ("neurocard", "print-in-lib", "println!(\"x\");"),
    ];
    for (krate, id, trigger) in cases {
        let src = format!(
            "fn f() {{\n    {trigger} // nc-lint: allow({id}) — fixture justification\n}}\n"
        );
        let report = lib(krate, &src);
        assert!(report.ok(), "{id}: diags: {:?}", report.diagnostics);
        assert_eq!(report.suppressed.len(), 1, "{id}");
        assert_eq!(report.suppressed[0].lint, id);
        assert_eq!(report.suppressed[0].justification, "fixture justification");
    }
}

#[test]
fn standalone_allow_covers_the_next_code_line() {
    let src = r#"fn f() {
    // nc-lint: allow(unbounded-channel) — fixture: drained synchronously below
    let pair = mpsc::channel::<u32>();
    let _ = pair;
}
"#;
    let report = lib("serve", src);
    assert!(report.ok(), "diags: {:?}", report.diagnostics);
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn missing_justification_keeps_the_finding_live_and_reports_the_directive() {
    let src = r#"fn f(m: &std::sync::Mutex<i32>) {
    // nc-lint: allow(lock-poison)
    let _g = m.lock().unwrap();
}
"#;
    let report = lib("neurocard", src);
    assert!(!report.ok());
    let found = ids(&report);
    assert!(found.contains(&"lock-poison"), "finding must stay live");
    assert!(
        found.contains(&"suppression"),
        "broken allow must be reported"
    );
    assert!(report.suppressed.is_empty());
}

#[test]
fn unknown_lint_id_in_allow_is_an_error_even_with_a_justification() {
    let src = r#"// nc-lint: allow(made-up-lint) — justified but unknown
fn f() {}
"#;
    let report = lib("neurocard", src);
    assert!(!report.ok());
    assert_eq!(count(&report, "suppression"), 1);
    assert!(report.diagnostics[0].message.contains("unknown lint"));
}
