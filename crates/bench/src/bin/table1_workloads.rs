//! Reproduces **Table 1**: workload characteristics (tables, rows of the full outer join,
//! columns, maximum column domain size) for JOB-light, JOB-light-ranges and JOB-M.

use nc_bench::{BenchEnv, HarnessConfig};
use nc_sampler::JoinCounts;

fn describe(env: &BenchEnv) -> (usize, u128, usize, usize) {
    let counts = JoinCounts::compute(&env.db, &env.schema);
    let num_tables = env.schema.num_tables();
    let full_join_rows = counts.full_join_rows();
    // Columns of the full join = base columns of all tables (the paper counts content
    // columns of the join, not virtual columns).
    let cols: usize = env
        .schema
        .tables()
        .iter()
        .map(|t| env.db.expect_table(t).num_columns())
        .sum();
    let max_domain = env
        .schema
        .tables()
        .iter()
        .flat_map(|t| {
            let table = env.db.expect_table(t);
            table
                .columns()
                .iter()
                .map(|c| c.distinct_count())
                .collect::<Vec<_>>()
        })
        .max()
        .unwrap_or(0);
    (num_tables, full_join_rows, cols, max_domain)
}

fn main() {
    let config = HarnessConfig::from_cli();
    nc_bench::harness::print_preamble("Table 1: workload characteristics", "all", &config);

    println!(
        "{:<22} {:>7} {:>16} {:>6} {:>10}   paper (real IMDB)",
        "Workload", "Tables", "FullJoinRows", "Cols", "MaxDomain"
    );
    let light = BenchEnv::job_light(&config);
    let (t, j, c, d) = describe(&light);
    println!(
        "{:<22} {:>7} {:>16} {:>6} {:>10}   6 tables, 2e12 rows, 8 cols, 235K domain",
        "JOB-light", t, j, c, d
    );
    println!(
        "{:<22} {:>7} {:>16} {:>6} {:>10}   6 tables, 2e12 rows, 13 cols, 134K domain",
        "JOB-light-ranges", t, j, c, d
    );
    let m = BenchEnv::job_m(&config);
    let (t, j, c, d) = describe(&m);
    println!(
        "{:<22} {:>7} {:>16} {:>6} {:>10}   16 tables, 1e13 rows, 16 cols, 2.7M domain",
        "JOB-M", t, j, c, d
    );
    println!();
    println!(
        "shape check: the JOB-M full join must be substantially larger and wider than the \
         JOB-light full join, and both full joins dwarf the base tables."
    );
}
