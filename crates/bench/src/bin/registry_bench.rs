//! Benchmarks the **multi-model registry**: heterogeneous models behind one router, a
//! hot artifact swap under live traffic, and the wire front-end — asserting the
//! determinism contract across every path, every run.
//!
//! What it does:
//!
//! 1. Loads (or trains; honours `NC_ARTIFACT`) a NeuroCard artifact and registers it
//!    next to two baselines — Postgres-like and IBJS — under the schema fingerprint
//!    stamped in the artifact manifest.
//! 2. Measures registry-routed in-process throughput per model (acquire → estimate →
//!    release per request, nearest-rank p50/p99).
//! 3. Starts the TCP front-end and replays the NeuroCard workload over the wire.
//! 4. Performs **one hot swap** (NeuroCard v1 → v2, same artifact bytes) while client
//!    threads are mid-workload, then verifies the old version drained and the new one
//!    serves.
//! 5. **Asserts every run**: for each query, the in-process registry estimate and the
//!    TCP round-trip estimate are bit-identical to a direct sequential
//!    `EstimatorCore::estimate`, before and after the swap — the acceptance gate of the
//!    registry redesign.
//!
//! Writes a machine-readable `BENCH_registry.json` (path overridable via
//! `NC_BENCH_REGISTRY_JSON`).  Knobs: `NC_SERVE_CLIENTS` (swap-phase client threads,
//! default 3).

use std::sync::Arc;
use std::time::Instant;

use nc_baselines::{IbjsEstimator, PostgresLikeEstimator};
use nc_bench::harness::{build_or_load_neurocard, print_preamble};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_serve::{
    BaselineModel, JournalEvent, ModelRegistry, ModelSelector, Quantiles, RegistryJournal,
    RegistryService, ScratchPool, ServeClient, ServeRequest, ServiceConfig, TcpServer,
};
use nc_workloads::job_light_queries;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-model in-process routing throughput, one row of `BENCH_registry.json`.
#[derive(serde::Serialize)]
struct ModelResult {
    name: String,
    version: u64,
    requests: usize,
    p50_us: f64,
    p99_us: f64,
    queries_per_sec: f64,
}

/// The registry's own per-version serving split ([`ModelRegistry::model_stats`]),
/// keyed by the full `fingerprint:name@version` model key.
#[derive(serde::Serialize)]
struct ModelStatsRow {
    key: String,
    served: u64,
    p50_us: f64,
    p99_us: f64,
    queries_per_sec: f64,
}

/// Reactor counters after the TCP phase, including the accept-backlog gauge:
/// `live_connections` vs the configured `max_connections` cap, plus
/// `accept_sheds` — connections refused *at the listener* because the cap was
/// reached (a subset of `overflow_disconnects`).
#[derive(serde::Serialize)]
struct ReactorCounters {
    accepted: u64,
    served: u64,
    overloaded: u64,
    stalled_disconnects: u64,
    overflow_disconnects: u64,
    accept_sheds: u64,
    live_connections: usize,
    max_connections: usize,
}

/// The machine-readable benchmark record CI archives.
#[derive(serde::Serialize)]
struct RegistryBenchRecord {
    bench: String,
    smoke: bool,
    schema_fingerprint: String,
    queries: usize,
    psamples: usize,
    models: Vec<ModelResult>,
    model_stats: Vec<ModelStatsRow>,
    reactor: ReactorCounters,
    tcp_requests: usize,
    tcp_queries_per_sec: f64,
    swap_publish_us: f64,
    swap_drain_us: f64,
    swap_phase_requests: usize,
    determinism_checks: usize,
    journal_events: usize,
}

fn quantiles(us: Vec<f64>) -> (f64, f64) {
    let q = Quantiles::of(us);
    (q.p50, q.p99)
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Registry bench: multi-model routing + hot swap",
        &env.name,
        &config,
    );
    let clients = env_usize("NC_SERVE_CLIENTS", 3);

    // NeuroCard through the full persistence path (NC_ARTIFACT makes this a pure load).
    let model = build_or_load_neurocard(&env, &config);
    let artifact_bytes = model.to_artifact().to_bytes();
    let artifact = neurocard::ModelArtifact::from_bytes(&artifact_bytes)
        .expect("round-tripping the just-written artifact");
    let fingerprint = artifact.schema_fingerprint();
    let core = Arc::new(artifact.to_core().expect("loading just-written weights"));
    let queries = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();
    let mut determinism_checks = 0usize;

    // One registry, three estimator kinds.
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_core("neurocard", core.clone())
        .expect("fresh registry");
    registry
        .register(
            fingerprint,
            "postgres",
            Arc::new(BaselineModel::with_schema(
                PostgresLikeEstimator::build(&env.db, &env.schema),
                env.schema.clone(),
            )),
        )
        .expect("fresh name");
    registry
        .register(
            fingerprint,
            "ibjs",
            Arc::new(BaselineModel::with_schema(
                IbjsEstimator::new(
                    env.db.clone(),
                    env.schema.clone(),
                    config.baseline_samples,
                    config.seed,
                ),
                env.schema.clone(),
            )),
        )
        .expect("fresh name");
    println!(
        "registered {} models under schema {fingerprint:016x}: {:?}\n",
        registry.keys().len(),
        registry
            .keys()
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
    );

    // ---- In-process routing throughput per model ------------------------------------
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>14}",
        "Model", "requests", "p50 (us)", "p99 (us)", "queries/sec"
    );
    let pool = ScratchPool::new(1);
    let mut model_results = Vec::new();
    for name in ["neurocard", "postgres", "ibjs"] {
        let selector = ModelSelector::latest(fingerprint, name);
        let mut latencies = Vec::with_capacity(queries.len());
        let mut scratch = pool.checkout();
        let start = Instant::now();
        let mut version = 0;
        for (i, q) in queries.iter().enumerate() {
            let request = ServeRequest::new(selector.clone(), q.clone());
            let request = if name == "neurocard" {
                request.with_samples(config.psamples)
            } else {
                request
            };
            let t = Instant::now();
            let reply = registry
                .handle(&request, &mut scratch)
                .expect("workload queries are valid");
            latencies.push(t.elapsed().as_secs_f64() * 1e6);
            version = reply.key.version;
            if name == "neurocard" {
                assert!(
                    reply.estimate.to_bits() == sequential[i].to_bits(),
                    "registry-routed estimate diverged from the direct core on query {i}"
                );
                determinism_checks += 1;
            }
        }
        pool.checkin(scratch);
        let wall = start.elapsed().as_secs_f64();
        let (p50, p99) = quantiles(latencies);
        let qps = queries.len() as f64 / wall.max(1e-12);
        println!(
            "{:<12} {:>10} {:>12.0} {:>12.0} {:>14.0}",
            name,
            queries.len(),
            p50,
            p99,
            qps
        );
        model_results.push(ModelResult {
            name: name.to_string(),
            version,
            requests: queries.len(),
            p50_us: p50,
            p99_us: p99,
            queries_per_sec: qps,
        });
    }

    // ---- The same workload over the TCP wire protocol --------------------------------
    let server = TcpServer::bind(registry.clone(), "127.0.0.1:0").expect("binding loopback");
    let mut client = ServeClient::connect(server.local_addr()).expect("connecting to loopback");
    let selector = ModelSelector::latest(fingerprint, "neurocard");
    let start = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        let reply = client
            .request(&ServeRequest::new(selector.clone(), q.clone()).with_samples(config.psamples))
            .expect("workload queries are valid over the wire");
        assert!(
            reply.estimate.to_bits() == sequential[i].to_bits(),
            "TCP estimate diverged from the direct core on query {i}"
        );
        determinism_checks += 1;
    }
    let tcp_wall = start.elapsed().as_secs_f64();
    let tcp_qps = queries.len() as f64 / tcp_wall.max(1e-12);
    println!(
        "\nTCP front-end: {} requests at {:.0} queries/sec (bit-identical to the core)",
        queries.len(),
        tcp_qps
    );

    // ---- Hot swap under live traffic --------------------------------------------------
    // v2 is loaded from the same artifact bytes: versioning is exercised end to end and
    // v2's estimates are known-identical, so determinism stays assertable mid-swap.
    let v2 = Arc::new(
        neurocard::ModelArtifact::from_bytes(&artifact_bytes)
            .expect("artifact bytes round-trip")
            .to_core()
            .expect("weights load"),
    );
    let service = RegistryService::new(
        registry.clone(),
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            default_samples: Some(config.psamples),
        },
    );
    let swap_stats = std::thread::scope(|scope| {
        for client_id in 0..clients {
            let handle = service.handle();
            let queries = &queries;
            let sequential = &sequential;
            let selector = &selector;
            scope.spawn(move || {
                for round in 0..2 {
                    for i in 0..queries.len() {
                        let idx = (i + client_id + round) % queries.len();
                        let reply = handle
                            .request(
                                ServeRequest::new(selector.clone(), queries[idx].clone())
                                    .with_samples(config.psamples),
                            )
                            .expect("no request may be lost across a hot swap");
                        assert!(
                            reply.estimate.to_bits() == sequential[idx].to_bits(),
                            "estimate diverged across the swap on query {idx}"
                        );
                    }
                }
            });
        }
        // Publish v2 while the clients above are mid-workload.
        let t = Instant::now();
        let receipt = registry
            .swap(fingerprint, "neurocard", v2.clone())
            .expect("neurocard is registered");
        let publish_us = t.elapsed().as_secs_f64() * 1e6;
        let t = Instant::now();
        let drained = registry.wait_drained(&receipt.old, std::time::Duration::from_secs(30));
        let drain_us = t.elapsed().as_secs_f64() * 1e6;
        assert!(drained, "v1 must drain once its in-flight requests finish");
        (receipt, publish_us, drain_us)
    });
    let (receipt, publish_us, drain_us) = swap_stats;
    let service_stats = service.shutdown();
    determinism_checks += service_stats.served;
    assert_eq!(
        registry.latest(fingerprint, "neurocard").map(|k| k.version),
        Some(receipt.new.version),
        "the swapped version must be current"
    );
    assert!(registry.draining_versions().is_empty());
    println!(
        "hot swap: published {} in {:.0} us; v{} drained in {:.0} us; {} requests served \
         across the swap, zero lost",
        receipt.new, publish_us, receipt.old.version, drain_us, service_stats.served
    );

    // Post-swap, both transports serve v2 bit-identically.
    let reply = client
        .request(
            &ServeRequest::new(selector.clone(), queries[0].clone()).with_samples(config.psamples),
        )
        .expect("the wire follows the swap");
    assert_eq!(reply.key, receipt.new);
    assert!(reply.estimate.to_bits() == sequential[0].to_bits());
    determinism_checks += 1;
    let reactor_stats = server.stats();
    server.shutdown();

    // ---- The registry's own per-version serving split ---------------------------------
    println!("\nper-model serving stats (ModelRegistry::model_stats):");
    println!(
        "{:<44} {:>8} {:>10} {:>10} {:>14}",
        "key", "served", "p50 (us)", "p99 (us)", "queries/sec"
    );
    let mut stats_rows = Vec::new();
    for s in registry.model_stats() {
        println!(
            "{:<44} {:>8} {:>10.0} {:>10.0} {:>14.0}",
            s.key.to_string(),
            s.served,
            s.p50_us,
            s.p99_us,
            s.queries_per_sec
        );
        stats_rows.push(ModelStatsRow {
            key: s.key.to_string(),
            served: s.served,
            p50_us: s.p50_us,
            p99_us: s.p99_us,
            queries_per_sec: s.queries_per_sec,
        });
    }

    // ---- Journal round trip: persistence is asserted every run ------------------------
    // Replay the session's publish history through the registry journal and check the
    // fold lands exactly on the versions the live registry is serving.
    let journal_events = {
        let path =
            std::env::temp_dir().join(format!("nc-registry-bench-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (mut journal, empty) = RegistryJournal::open(&path).expect("fresh journal");
        assert!(empty.is_empty());
        let mut history: Vec<nc_serve::ModelKey> = registry.keys();
        history.push(receipt.old.clone()); // v1 was published before the swap superseded it
        history.sort();
        for key in &history {
            journal
                .append(&JournalEvent::publish(key, "<in-memory>"))
                .expect("journal append");
        }
        drop(journal);
        let (_, events) = RegistryJournal::open(&path).expect("reopening the journal");
        let folded: Vec<nc_serve::ModelKey> = nc_serve::journal::fold_events(&events)
            .expect("the journal folds")
            .into_iter()
            .map(|(key, _)| key)
            .collect();
        let mut live = registry.keys();
        live.sort();
        assert_eq!(
            folded, live,
            "a journal replay must restore exactly the live registry"
        );
        let _ = std::fs::remove_file(&path);
        println!(
            "journal round trip: {} events fold to the {} live models — restart-safe",
            events.len(),
            live.len()
        );
        events.len()
    };

    println!(
        "\ndeterminism verified: {determinism_checks} registry-routed estimates (in-process, \
         TCP, and across a hot swap) were bit-identical to the sequential core"
    );

    let record = RegistryBenchRecord {
        bench: "registry".to_string(),
        smoke: config.smoke,
        schema_fingerprint: format!("{fingerprint:016x}"),
        queries: queries.len(),
        psamples: config.psamples,
        models: model_results,
        model_stats: stats_rows,
        reactor: ReactorCounters {
            accepted: reactor_stats.accepted,
            served: reactor_stats.served,
            overloaded: reactor_stats.overloaded,
            stalled_disconnects: reactor_stats.stalled_disconnects,
            overflow_disconnects: reactor_stats.overflow_disconnects,
            accept_sheds: reactor_stats.accept_sheds,
            live_connections: reactor_stats.live_connections,
            max_connections: reactor_stats.max_connections,
        },
        tcp_requests: queries.len(),
        tcp_queries_per_sec: tcp_qps,
        swap_publish_us: publish_us,
        swap_drain_us: drain_us,
        swap_phase_requests: service_stats.served,
        determinism_checks,
        journal_events,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serialisation");
    let json_path = std::env::var("NC_BENCH_REGISTRY_JSON")
        .unwrap_or_else(|_| "BENCH_registry.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
