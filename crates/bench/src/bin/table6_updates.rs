//! Reproduces **Table 6**: update strategies under time-ordered partition appends.
//!
//! `title` is range-partitioned on `production_year` into 5 partitions; each ingest defines
//! a new snapshot of the whole database.  Three strategies are compared on the same query
//! set after every ingest:
//!
//! * **stale** — train once on the first snapshot, never update,
//! * **fast update** — after each ingest, take gradient steps on a small number of fresh
//!   samples (the paper uses 1% of the original budget),
//! * **retrain** — after each ingest, train on the full budget again.
//!
//! Paper: the stale model degrades by orders of magnitude from partition 3 onwards; fast
//! update recovers most accuracy in seconds; retrain is best and still only takes minutes.

use std::sync::Arc;

use nc_bench::harness::{print_preamble, secs};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_datagen::partitioned_snapshots;
use nc_schema::Query;
use nc_workloads::{job_light_queries, q_error, ErrorSummary};
use neurocard::{estimator::BuildOptions, NeuroCard};

fn eval(
    model: &NeuroCard,
    snapshot_db: &Arc<nc_storage::Database>,
    env: &BenchEnv,
    queries: &[Query],
) -> (f64, f64) {
    let errors: Vec<f64> = queries
        .iter()
        .map(|q| {
            let truth = nc_exec::true_cardinality(snapshot_db, &env.schema, q) as f64;
            q_error(model.estimate(q), truth)
        })
        .collect();
    let s = ErrorSummary::from_errors(&errors);
    (s.median, s.p95)
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Table 6: update strategies (stale / fast update / retrain)",
        &env.name,
        &config,
    );

    let snapshots: Vec<Arc<nc_storage::Database>> =
        partitioned_snapshots(&env.db, &env.schema, "production_year", 5)
            .into_iter()
            .map(Arc::new)
            .collect();
    let queries = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
    println!("{} queries, 5 cumulative partitions\n", queries.len());

    // All strategies start from the same model trained on the first snapshot, with
    // dictionaries built over the full database so the token space is stable.
    let options = BuildOptions {
        dictionary_db: Some(env.db.clone()),
        biased_sampler: false,
    };
    let cfg = config.neurocard();
    let fast_tuples = (config.train_tuples / 100).max(200);

    let mut stale = NeuroCard::build_with(
        snapshots[0].clone(),
        env.schema.clone(),
        &cfg,
        options.clone(),
    );
    let mut fast = NeuroCard::build_with(
        snapshots[0].clone(),
        env.schema.clone(),
        &cfg,
        options.clone(),
    );
    let mut retrain = NeuroCard::build_with(
        snapshots[0].clone(),
        env.schema.clone(),
        &cfg,
        options.clone(),
    );

    println!(
        "{:<12} {:>10} {:>7} | {}",
        "Strategy", "UpdateTime", "Metric", "partitions 1..5"
    );
    let mut rows: Vec<(String, String, Vec<(f64, f64)>)> = vec![
        ("stale".into(), "none".into(), Vec::new()),
        ("fast update".into(), String::new(), Vec::new()),
        ("retrain".into(), String::new(), Vec::new()),
    ];

    let mut fast_time = std::time::Duration::ZERO;
    let mut retrain_time = std::time::Duration::ZERO;
    for (p, snapshot) in snapshots.iter().enumerate() {
        if p > 0 {
            // Stale: ingest the snapshot (so |J| and the sampler refer to it? NO — stale
            // never updates anything, including |J|).  Evaluate as-is.
            let t = std::time::Instant::now();
            fast.ingest_snapshot(snapshot.clone(), fast_tuples);
            fast_time += t.elapsed();
            let t = std::time::Instant::now();
            retrain.ingest_snapshot(snapshot.clone(), config.train_tuples);
            retrain_time += t.elapsed();
        }
        rows[0].2.push(eval(&stale, snapshot, &env, &queries));
        rows[1].2.push(eval(&fast, snapshot, &env, &queries));
        rows[2].2.push(eval(&retrain, snapshot, &env, &queries));
        let _ = &mut stale; // the stale model is intentionally never updated
    }
    rows[1].1 = format!("~{} total", secs(fast_time));
    rows[2].1 = format!("~{} total", secs(retrain_time));

    for (name, time, per_partition) in &rows {
        let p95s: Vec<String> = per_partition
            .iter()
            .map(|(_, p95)| format!("{p95:>8.2}"))
            .collect();
        let p50s: Vec<String> = per_partition
            .iter()
            .map(|(p50, _)| format!("{p50:>8.2}"))
            .collect();
        println!(
            "{:<12} {:>10} {:>7} | {}",
            name,
            time,
            "p95",
            p95s.join(" ")
        );
        println!("{:<12} {:>10} {:>7} | {}", "", "", "p50", p50s.join(" "));
    }

    println!();
    println!("Paper: stale degrades to 1e4-1e5 p95 by partition 3; fast update stays ~13x;");
    println!("retrain stays ~6-8x.  Shape check: stale must degrade monotonically while the");
    println!("updated strategies stay within a small factor of their partition-1 accuracy.");
}
