//! Reproduces **Figure 7c**: wall-clock construction time of MSCN, DeepDB and NeuroCard.
//!
//! Paper: NeuroCard constructs fastest (3 min / 7 min incl. the 13 s join-count step),
//! DeepDB takes 24–38 min on CPU, and MSCN's headline 3 min excludes the 3.2 h needed to
//! execute its 10K training queries.  The same ordering — and the fact that MSCN's hidden
//! labelling cost dominates — is what this binary measures on the synthetic data.

use std::time::Instant;

use nc_baselines::{DeepDbLite, MscnConfig, MscnEstimator};
use nc_bench::harness::{print_preamble, secs};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::job_light_ranges_queries;
use neurocard::NeuroCard;

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Figure 7c: construction time comparison",
        &env.name,
        &config,
    );

    // --- MSCN: label generation (executing training queries) + training ---------------
    let t0 = Instant::now();
    let training = job_light_ranges_queries(
        &env.db,
        &env.schema,
        config.queries.max(150),
        config.seed + 7,
    );
    let labelled: Vec<(nc_schema::Query, f64)> = training
        .iter()
        .map(|q| {
            let card = nc_exec::true_cardinality(&env.db, &env.schema, q) as f64;
            (q.clone(), card.max(1.0))
        })
        .collect();
    let labelling = t0.elapsed();
    let t1 = Instant::now();
    let _mscn = MscnEstimator::train(
        &env.db,
        env.schema.clone(),
        &labelled,
        &MscnConfig::default(),
    );
    let mscn_train = t1.elapsed();

    // --- DeepDB-lite --------------------------------------------------------------------
    let t2 = Instant::now();
    let _deepdb = DeepDbLite::build(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let deepdb_time = t2.elapsed();

    // --- NeuroCard ----------------------------------------------------------------------
    let t3 = Instant::now();
    let model = NeuroCard::build(env.db.clone(), env.schema.clone(), &config.neurocard());
    let neurocard_total = t3.elapsed();
    let stats = model.stats();

    println!("{:<22} {:>14} {:>30}", "System", "construction", "notes");
    println!(
        "{:<22} {:>14} {:>30}",
        "MSCN",
        secs(mscn_train),
        format!("+ {} labelling true cards", secs(labelling))
    );
    println!(
        "{:<22} {:>14} {:>30}",
        "DeepDB-lite",
        secs(deepdb_time),
        "pair-model sampling"
    );
    println!(
        "{:<22} {:>14} {:>30}",
        "NeuroCard",
        secs(neurocard_total),
        format!(
            "prep {} + stall {} + train {}",
            secs(stats.prepare_time),
            secs(stats.sampling_time),
            secs(stats.training_time)
        )
    );
    println!();
    println!(
        "NeuroCard pipeline split ({} sampler threads, prefetch depth {}):",
        config.sampler_threads, config.prefetch_depth
    );
    let total = stats.sampling_time + stats.training_time;
    let stall_pct = 100.0 * stats.sampling_time.as_secs_f64() / total.as_secs_f64().max(1e-9);
    println!(
        "  training compute {} ({:.0}%), sampler stall {} ({:.0}%)",
        secs(stats.training_time),
        100.0 - stall_pct,
        secs(stats.sampling_time),
        stall_pct
    );
    println!("  (the pool samples and encodes batch k+1 while batch k trains, so 'stall'");
    println!("  is only the sampling time NOT hidden behind the forward/backward pass)");
    println!();
    println!("Paper: NeuroCard 3-7 min, DeepDB 24-38 min, MSCN 3 min + 3.2 h of labelling.");
    println!("Shape check: NeuroCard's join-count preparation is a tiny fraction of its");
    println!("total construction time, and MSCN's labelling dominates its pipeline.");
}
