//! Reproduces **Figure 6**: the query-selectivity distribution (CDF) of JOB-light,
//! JOB-light-ranges and JOB-M.
//!
//! The paper's observation: the two new benchmarks have a much wider selectivity spectrum
//! than JOB-light — medians more than 100× lower and minima about 1000× lower.

use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::selectivity::selectivity_spectrum;
use nc_workloads::{job_light_queries, job_light_ranges_queries, job_m_queries};

fn print_cdf(name: &str, spectrum: &[f64]) {
    if spectrum.is_empty() {
        println!("{name}: no queries generated");
        return;
    }
    let pick = |q: f64| {
        let idx = ((spectrum.len() - 1) as f64 * q).round() as usize;
        spectrum[idx]
    };
    println!(
        "{:<22} min {:>9.2e}  p25 {:>9.2e}  median {:>9.2e}  p75 {:>9.2e}  max {:>9.2e}",
        name,
        pick(0.0),
        pick(0.25),
        pick(0.5),
        pick(0.75),
        pick(1.0)
    );
}

fn main() {
    let config = HarnessConfig::from_cli();
    let light = BenchEnv::job_light(&config);
    nc_bench::harness::print_preamble(
        "Figure 6: query selectivity distribution",
        &light.name,
        &config,
    );

    let job_light = job_light_queries(&light.db, &light.schema, config.queries, config.seed);
    let ranges =
        job_light_ranges_queries(&light.db, &light.schema, config.queries, config.seed + 1);
    let light_spec = selectivity_spectrum(&light.db, &light.schema, &job_light);
    let ranges_spec = selectivity_spectrum(&light.db, &light.schema, &ranges);

    let m_env = BenchEnv::job_m(&config);
    let job_m = job_m_queries(&m_env.db, &m_env.schema, config.queries, config.seed + 2);
    let m_spec = selectivity_spectrum(&m_env.db, &m_env.schema, &job_m);

    println!("selectivity = true cardinality / unfiltered inner-join cardinality\n");
    print_cdf("JOB-light", &light_spec);
    print_cdf("JOB-light-ranges", &ranges_spec);
    print_cdf("JOB-M", &m_spec);

    let median = |s: &[f64]| {
        if s.is_empty() {
            1.0
        } else {
            s[s.len() / 2].max(1e-12)
        }
    };
    println!();
    println!(
        "shape check (paper: ranges/JOB-M medians >100x lower than JOB-light): \
         median ratio JOB-light / JOB-light-ranges = {:.1}x, JOB-light / JOB-M = {:.1}x",
        median(&light_spec) / median(&ranges_spec),
        median(&light_spec) / median(&m_spec)
    );
}
