//! Reproduces **Table 4**: estimation errors on the 16-table, multi-key JOB-M workload.
//!
//! Paper numbers (real IMDB): Postgres 174 / 1e4 / 8e4 / 1e5; IBJS 61.1 / 3e5 / 4e6 / 4e6;
//! NeuroCard 3.2 / 283 / 1297 / 1e4 at 27.3MB.  MSCN and DeepDB are omitted exactly as in
//! the paper (unsupported filters / intractable training).

use nc_baselines::{IbjsEstimator, PostgresLikeEstimator};
use nc_bench::harness::{build_or_load_neurocard, evaluate, print_preamble, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::{job_m_queries, print_error_table, ErrorTableRow};

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_m(&config);
    print_preamble("Table 4: JOB-M estimation errors", &env.name, &config);

    let queries = job_m_queries(&env.db, &env.schema, config.queries, config.seed);
    println!(
        "generated {} JOB-M queries; computing true cardinalities...",
        queries.len()
    );
    let truths = true_cardinalities(&env, &queries);

    let mut rows = Vec::new();

    let postgres = PostgresLikeEstimator::build(&env.db, &env.schema);
    let r = evaluate(&postgres, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    let ibjs = IbjsEstimator::new(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let r = evaluate(&ibjs, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    // Honours the artifact cache (NC_ARTIFACT / NC_SAVE_ARTIFACT): CI trains the JOB-M
    // smoke model once, then later runs load it instead of retraining the 16-table join.
    let model = build_or_load_neurocard(&env, &config);
    let r = evaluate(&model, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    println!();
    print_error_table("Table 4 (measured, synthetic data)", &rows);
    println!();
    println!("Paper (real IMDB):");
    println!("  Postgres   120KB   median 174   p95 1e4  p99 8e4   max 1e5");
    println!("  IBJS       –       median 61.1  p95 3e5  p99 4e6   max 4e6");
    println!("  NeuroCard  27.3MB  median 3.2   p95 283  p99 1297  max 1e4");
    println!();
    println!("shape check: NeuroCard should beat both baselines by roughly an order of");
    println!("magnitude across the quantiles while remaining a small fraction of data size.");
}
