//! Chaos benchmark: the TCP serving stack under seeded deterministic fault
//! injection, reported as a machine-readable robustness record.
//!
//! The server runs the full `FaultPlan::chaos(seed)` schedule (worker panics and
//! delays, partial socket reads/writes, journal faults are idle here); each client
//! additionally drops its own connection mid-flight from a per-client seeded
//! stream.  Clients retry with bounded jittered backoff and reconnect-and-replay.
//! What the record certifies, per run:
//!
//! * `wrong_estimates` is **always 0** — every completed reply was bit-identical
//!   to the sequential [`neurocard::EstimatorCore`], or explicitly `degraded`
//!   (the stats fallback answer for a selector naming no model),
//! * `failed_requests` is 0 — the retry budget absorbed every injected fault,
//! * the per-point fault counters (`hits`/`fired`) that produced that outcome,
//!   so two runs at the same seed can be diffed for replayability.
//!
//! In release builds the fault hooks are compiled away: the run degrades to a
//! plain serving pass and the record says `faults_compiled_in: false`.  CI runs
//! this binary **unoptimised** (dev profile keeps `debug_assertions` on) so the
//! chaos is real.
//!
//! Knobs: `NC_CHAOS_SEED` (default 49317), `NC_CHAOS_CLIENTS` (default 4),
//! `NC_CHAOS_ROUNDS` (default 3).  Writes `BENCH_chaos.json` (path overridable
//! via `NC_BENCH_CHAOS_JSON`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use nc_bench::harness::{build_or_load_neurocard, print_preamble};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_sampler::seed::derive_stream_seed;
use nc_serve::{
    ClientConfig, FaultInjector, FaultPlan, ModelRegistry, ModelSelector, ReactorConfig,
    ServeClient, ServeRequest, StatsFallback, TcpServer,
};
use nc_workloads::job_light_queries;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(serde::Serialize)]
struct PointRecord {
    point: String,
    hits: u64,
    fired: u64,
}

/// The machine-readable robustness record CI archives.
#[derive(serde::Serialize)]
struct ChaosBenchRecord {
    bench: String,
    smoke: bool,
    faults_compiled_in: bool,
    seed: u64,
    clients: u64,
    rounds: u64,
    queries: usize,
    requests: u64,
    completed: u64,
    failed_requests: u64,
    wrong_estimates: u64,
    degraded: u64,
    retries: u64,
    reconnects: u64,
    server_jobs: u64,
    wall_secs: f64,
    server_faults: Vec<PointRecord>,
    client_conn_drops_fired: u64,
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Chaos bench: serving under deterministic fault injection",
        &env.name,
        &config,
    );

    let seed = env_u64("NC_CHAOS_SEED", 49_317);
    let clients = env_u64("NC_CHAOS_CLIENTS", 4);
    let rounds = env_u64("NC_CHAOS_ROUNDS", 3);
    if !FaultInjector::compiled_in() {
        println!("note: release build — fault hooks compiled away, plain serving pass");
    }

    let model = build_or_load_neurocard(&env, &config);
    let artifact_bytes = model.to_artifact().to_bytes();
    let artifact = neurocard::ModelArtifact::from_bytes(&artifact_bytes)
        .expect("round-tripping the just-written artifact");
    let fingerprint = artifact.schema_fingerprint();
    let core = Arc::new(
        artifact
            .to_core()
            .expect("loading the just-written weights"),
    );

    let queries = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();
    let selector = ModelSelector::latest(fingerprint, "neurocard");
    // A selector naming no model: must degrade to the stats fallback, never error.
    let ghost = ModelSelector::latest(fingerprint, "ghost");

    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_core("neurocard", core.clone())
        .expect("fresh registry");
    registry.set_fallback(Arc::new(StatsFallback::from_database(
        &env.db,
        env.schema.clone(),
    )));
    let server_faults = FaultPlan::chaos(seed).injector();
    let server = TcpServer::bind_with(
        registry.clone(),
        "127.0.0.1:0",
        ReactorConfig {
            faults: server_faults.clone(),
            ..ReactorConfig::default()
        },
    )
    .expect("binding loopback");
    let addr = server.local_addr();

    println!(
        "chaos seed {seed}: {clients} clients x {rounds} rounds x {} queries (+1 degraded probe each)\n",
        queries.len()
    );
    let start = Instant::now();
    // (completed, failed, wrong, retries, reconnects, drops_fired) per client.
    let per_client: Vec<(u64, u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_id| {
                let (queries, sequential, selector, ghost) =
                    (&queries, &sequential, &selector, &ghost);
                let psamples = config.psamples;
                let faults = FaultPlan::new(derive_stream_seed(seed, 2, client_id))
                    .point("client.conn-drop", 150)
                    .injector();
                let client_config = ClientConfig {
                    request_timeout: Duration::from_secs(30),
                    max_retries: 12,
                    backoff_base: Duration::from_millis(1),
                    backoff_cap: Duration::from_millis(10),
                    retry_seed: derive_stream_seed(seed, 1, client_id),
                    faults: faults.clone(),
                    ..ClientConfig::default()
                };
                scope.spawn(move || {
                    let mut conn =
                        ServeClient::connect_with(addr, client_config).expect("loopback connect");
                    let (mut completed, mut failed, mut wrong, mut degraded) =
                        (0u64, 0u64, 0u64, 0u64);
                    for round in 0..rounds {
                        for i in 0..queries.len() {
                            let idx = (i + (client_id + round) as usize) % queries.len();
                            let request = ServeRequest::new(selector.clone(), queries[idx].clone())
                                .with_samples(psamples);
                            match conn.request(&request) {
                                Ok(reply) => {
                                    completed += 1;
                                    if reply.degraded {
                                        degraded += 1;
                                    } else if reply.estimate.to_bits() != sequential[idx].to_bits()
                                    {
                                        wrong += 1;
                                        eprintln!(
                                            "WRONG estimate on query {idx}: {} vs {}",
                                            reply.estimate, sequential[idx]
                                        );
                                    }
                                }
                                Err(e) => {
                                    failed += 1;
                                    eprintln!("request failed past the retry budget: {e}");
                                }
                            }
                        }
                        // One degraded probe per round: the ghost selector must come
                        // back flagged, from the fallback, not as an error.
                        match conn.request(&ServeRequest::new(ghost.clone(), queries[0].clone())) {
                            Ok(reply) if reply.degraded => {
                                completed += 1;
                                degraded += 1;
                            }
                            Ok(_) => wrong += 1,
                            Err(e) => {
                                failed += 1;
                                eprintln!("degraded probe failed: {e}");
                            }
                        }
                    }
                    let drops = faults
                        .counts()
                        .iter()
                        .find(|c| c.point == "client.conn-drop")
                        .map(|c| c.fired)
                        .unwrap_or(0);
                    let _ = degraded; // folded into the registry-side counter below
                    (
                        completed,
                        failed,
                        wrong,
                        conn.retries(),
                        conn.reconnects(),
                        drops,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let server_jobs = server.served();
    server.shutdown();

    let requests = clients * rounds * (queries.len() as u64 + 1);
    let completed: u64 = per_client.iter().map(|c| c.0).sum();
    let failed: u64 = per_client.iter().map(|c| c.1).sum();
    let wrong: u64 = per_client.iter().map(|c| c.2).sum();
    let retries: u64 = per_client.iter().map(|c| c.3).sum();
    let reconnects: u64 = per_client.iter().map(|c| c.4).sum();
    let drops_fired: u64 = per_client.iter().map(|c| c.5).sum();
    let degraded = registry.stats().degraded;

    let server_counts: Vec<PointRecord> = server_faults
        .counts()
        .into_iter()
        .map(|c| PointRecord {
            point: c.point.to_string(),
            hits: c.hits,
            fired: c.fired,
        })
        .collect();

    println!(
        "{completed}/{requests} completed  |  {failed} failed  |  {wrong} wrong  |  \
         {degraded} degraded  |  {retries} retries  |  {reconnects} reconnects"
    );
    for p in &server_counts {
        println!(
            "  fault {:<22} hits {:>6}  fired {:>5}",
            p.point, p.hits, p.fired
        );
    }
    println!(
        "  fault {:<22} fired {drops_fired} (across {clients} clients)",
        "client.conn-drop"
    );

    assert_eq!(wrong, 0, "a chaos run must never surface a wrong estimate");
    assert_eq!(
        failed, 0,
        "the retry budget must absorb every injected fault on loopback"
    );
    assert_eq!(completed, requests);

    let record = ChaosBenchRecord {
        bench: "chaos".to_string(),
        smoke: config.smoke,
        faults_compiled_in: FaultInjector::compiled_in(),
        seed,
        clients,
        rounds,
        queries: queries.len(),
        requests,
        completed,
        failed_requests: failed,
        wrong_estimates: wrong,
        degraded,
        retries,
        reconnects,
        server_jobs,
        wall_secs: wall,
        server_faults: server_counts,
        client_conn_drops_fired: drops_fired,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serialisation");
    let json_path =
        std::env::var("NC_BENCH_CHAOS_JSON").unwrap_or_else(|_| "BENCH_chaos.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
