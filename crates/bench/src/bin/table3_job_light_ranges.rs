//! Reproduces **Table 3**: estimation errors on JOB-light-ranges, including the "-large"
//! configurations of DeepDB and NeuroCard.
//!
//! Paper numbers (real IMDB, 1000 queries): Postgres 13.8 / 2e3 / 2e4 / 5e6;
//! IBJS 10.1 / 4e4 / 1e6 / 1e8; MSCN 4.53 / 397 / 6e3 / 2e4; DeepDB 3.40 / 537 / 8e3 / 2e5;
//! DeepDB-large 2.35 / 441 / 1e4 / 3e5; NeuroCard 1.87 / 57.1 / 375 / 8169;
//! NeuroCard-large 1.49 / 44.0 / 300 / 4116.

use nc_baselines::{DeepDbLite, IbjsEstimator, MscnConfig, MscnEstimator, PostgresLikeEstimator};
use nc_bench::harness::{build_or_load_neurocard, evaluate, print_preamble, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::{job_light_ranges_queries, print_error_table, ErrorTableRow};
use neurocard::{NeuroCard, NeuroCardConfig};

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Table 3: JOB-light-ranges estimation errors",
        &env.name,
        &config,
    );

    let queries = job_light_ranges_queries(&env.db, &env.schema, config.queries, config.seed);
    println!(
        "generated {} JOB-light-ranges queries; computing true cardinalities...",
        queries.len()
    );
    let truths = true_cardinalities(&env, &queries);

    let mut rows = Vec::new();

    let postgres = PostgresLikeEstimator::build(&env.db, &env.schema);
    let r = evaluate(&postgres, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    let ibjs = IbjsEstimator::new(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let r = evaluate(&ibjs, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    let training = job_light_ranges_queries(
        &env.db,
        &env.schema,
        config.queries.max(150),
        config.seed + 2000,
    );
    let labelled: Vec<(nc_schema::Query, f64)> = training
        .iter()
        .map(|q| {
            let card = nc_exec::true_cardinality(&env.db, &env.schema, q) as f64;
            (q.clone(), card.max(1.0))
        })
        .collect();
    let mscn = MscnEstimator::train(
        &env.db,
        env.schema.clone(),
        &labelled,
        &MscnConfig::default(),
    );
    let r = evaluate(&mscn, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    let deepdb = DeepDbLite::build(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let r = evaluate(&deepdb, &queries, &truths);
    rows.push(ErrorTableRow::new("DeepDB-lite", r.size_bytes, r.summary));

    let deepdb_large = DeepDbLite::build(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples * 4,
        config.seed,
    );
    let r = evaluate(&deepdb_large, &queries, &truths);
    rows.push(ErrorTableRow::new(
        "DeepDB-lite-large",
        r.size_bytes,
        r.summary,
    ));

    let base = build_or_load_neurocard(&env, &config);
    let r = evaluate(&base, &queries, &truths);
    rows.push(ErrorTableRow::new("NeuroCard", r.size_bytes, r.summary));

    println!("training NeuroCard-large...");
    let mut large_cfg = NeuroCardConfig::large();
    large_cfg.training_tuples = config.train_tuples * 2;
    large_cfg.progressive_samples = config.psamples;
    large_cfg.seed = config.seed;
    let large = NeuroCard::build(env.db.clone(), env.schema.clone(), &large_cfg);
    let r = evaluate(&large, &queries, &truths);
    rows.push(ErrorTableRow::new(
        "NeuroCard-large",
        r.size_bytes,
        r.summary,
    ));

    println!();
    print_error_table("Table 3 (measured, synthetic data)", &rows);
    println!();
    println!("Paper (real IMDB): NeuroCard improves on the best prior method by 2x at the");
    println!("median and 15-72x at the tail; the -large variants improve further.");
}
