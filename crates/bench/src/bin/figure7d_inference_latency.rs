//! Reproduces **Figure 7d**: per-query inference latency CDF of MSCN, DeepDB and NeuroCard
//! on JOB-light-ranges queries — and benchmarks NeuroCard's inference fast path (PR 3)
//! against the pre-optimization reference path.
//!
//! Paper: MSCN is fastest (a tiny feed-forward net), DeepDB spans ~1–100 ms depending on
//! query complexity, NeuroCard sits at a predictable ~10–20 ms.  The orderings (MSCN ≪
//! NeuroCard, DeepDB's wide spread) are the reproduced shape.
//!
//! The fast-path section reports old-vs-new p50/p99 latency and progressive-sample
//! throughput, asserts the two paths return **bit-identical** estimates (the determinism
//! contract), and writes a machine-readable `BENCH_inference.json` (path overridable via
//! `NC_BENCH_JSON`) so CI can track the perf trajectory.

use std::time::Instant;

use nc_baselines::{CardinalityEstimator, DeepDbLite, MscnConfig, MscnEstimator};
use nc_bench::harness::{evaluate, print_preamble, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::job_light_ranges_queries;
use neurocard::{NeuroCard, Precision};

/// The two-tier determinism contract's accuracy gate: over the whole workload, the fast
/// tier's estimate may not differ from the exact tier's by more than this factor in
/// either direction (`max(fast/exact, exact/fast)`).  bf16 keeps every weight within
/// 2⁻⁸ relative, and the tiers share the per-query RNG stream, so the observed delta is
/// small (≈1.1 on the smoke workload); the bound leaves room for an occasional flipped
/// progressive sample without ever letting the tiers drift apart silently.
const QERROR_DELTA_BOUND: f64 = 4.0;

fn latency_quantiles(mut ms: Vec<f64>) -> (f64, f64, f64) {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| ms[((ms.len() - 1) as f64 * q).round() as usize];
    (pick(0.0), pick(0.5), pick(1.0))
}

/// Latency distribution and throughput of one inference path over a workload.
struct PathStats {
    p50_us: f64,
    p99_us: f64,
    total_secs: f64,
    samples_per_sec: f64,
}

fn path_stats(mut latencies_us: Vec<f64>, psamples: usize) -> PathStats {
    let total_secs = latencies_us.iter().sum::<f64>() / 1e6;
    let total_samples = (latencies_us.len() * psamples) as f64;
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Nearest-rank quantile over the (now sorted) latencies.
    let pick = |q: f64| latencies_us[((latencies_us.len() - 1) as f64 * q).round() as usize];
    PathStats {
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        total_secs,
        samples_per_sec: total_samples / total_secs.max(1e-12),
    }
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble("Figure 7d: inference latency CDF", &env.name, &config);

    let queries = job_light_ranges_queries(&env.db, &env.schema, config.queries, config.seed);
    let truths = true_cardinalities(&env, &queries);

    let training = job_light_ranges_queries(
        &env.db,
        &env.schema,
        config.queries.max(120),
        config.seed + 3000,
    );
    let labelled: Vec<(nc_schema::Query, f64)> = training
        .iter()
        .map(|q| {
            let card = nc_exec::true_cardinality(&env.db, &env.schema, q) as f64;
            (q.clone(), card.max(1.0))
        })
        .collect();
    let mscn = MscnEstimator::train(
        &env.db,
        env.schema.clone(),
        &labelled,
        &MscnConfig::default(),
    );
    let deepdb = DeepDbLite::build(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let neurocard = NeuroCard::build(env.db.clone(), env.schema.clone(), &config.neurocard());

    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "Estimator", "min (ms)", "median (ms)", "max (ms)"
    );
    for est in [
        &mscn as &dyn CardinalityEstimator,
        &deepdb as &dyn CardinalityEstimator,
        &neurocard as &dyn CardinalityEstimator,
    ] {
        let result = evaluate(est, &queries, &truths);
        let ms: Vec<f64> = result
            .latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1000.0)
            .collect();
        let (min, median, max) = latency_quantiles(ms);
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2}",
            result.name, min, median, max
        );
    }
    println!();
    println!("Paper: MSCN fastest; DeepDB 1-100ms spread; NeuroCard predictable ~12-17ms.");

    // --- NeuroCard inference fast path vs pre-PR-3 reference path ---------------------
    let rounds = if config.smoke { 2 } else { 4 };
    let mut ref_us = Vec::with_capacity(rounds * queries.len());
    let mut fast_us = Vec::with_capacity(rounds * queries.len());
    let mut scratch = neurocard::SamplerScratch::new();
    for _ in 0..rounds {
        for query in &queries {
            let start = Instant::now();
            let est_ref = neurocard.estimate_with_samples_reference(query, config.psamples);
            ref_us.push(start.elapsed().as_secs_f64() * 1e6);
            let start = Instant::now();
            let est_fast =
                neurocard.estimate_with_samples_scratch(query, config.psamples, &mut scratch);
            fast_us.push(start.elapsed().as_secs_f64() * 1e6);
            // The determinism contract, enforced on every benchmark run.
            assert!(
                est_ref == est_fast,
                "fast path diverged from reference on {query}: {est_ref} vs {est_fast}"
            );
        }
    }
    let start = Instant::now();
    let batch_estimates = neurocard.estimate_batch(&queries);
    let batch_secs = start.elapsed().as_secs_f64();
    let sequential: Vec<f64> = queries
        .iter()
        .map(|q| neurocard.estimate_with_samples(q, config.psamples))
        .collect();
    assert_eq!(
        batch_estimates, sequential,
        "estimate_batch diverged from sequential estimates"
    );

    let reference = path_stats(ref_us, config.psamples);
    let fast = path_stats(fast_us, config.psamples);
    let speedup = reference.total_secs / fast.total_secs.max(1e-12);
    let batch_samples_per_sec = (queries.len() * config.psamples) as f64 / batch_secs.max(1e-12);

    println!();
    println!("NeuroCard fast path (PR 3) vs reference path, {rounds} rounds:");
    println!(
        "{:<22} {:>12} {:>12} {:>16}",
        "Path", "p50 (us)", "p99 (us)", "samples/sec"
    );
    println!(
        "{:<22} {:>12.0} {:>12.0} {:>16.0}",
        "reference (pre-PR3)", reference.p50_us, reference.p99_us, reference.samples_per_sec
    );
    println!(
        "{:<22} {:>12.0} {:>12.0} {:>16.0}",
        "fast path", fast.p50_us, fast.p99_us, fast.samples_per_sec
    );
    println!(
        "{:<22} {:>12} {:>12} {:>16.0}",
        "estimate_batch", "-", "-", batch_samples_per_sec
    );
    println!("single-query speedup: {speedup:.2}x (determinism verified: estimates bit-identical)");

    // --- Two-tier determinism contract: exact tier vs SIMD/bf16 fast tier -------------
    let core = neurocard.core();
    let isa = nc_nn::kernel::isa_name();
    let mut exact_us = Vec::with_capacity(rounds * queries.len());
    let mut fast_tier_us = Vec::with_capacity(rounds * queries.len());
    let mut max_qerror_delta = 1.0f64;
    for round in 0..rounds {
        for (i, query) in queries.iter().enumerate() {
            let start = Instant::now();
            let est_exact = core.estimate_with_samples_scratch_precision(
                query,
                config.psamples,
                &mut scratch,
                Precision::Exact,
            );
            exact_us.push(start.elapsed().as_secs_f64() * 1e6);
            let start = Instant::now();
            let est_fast = core.estimate_with_samples_scratch_precision(
                query,
                config.psamples,
                &mut scratch,
                Precision::Fast,
            );
            fast_tier_us.push(start.elapsed().as_secs_f64() * 1e6);
            // Tier one: the exact tier stays pinned — bit-identical to the sequential
            // estimates computed above, regardless of the `simd` feature.
            if round == 0 {
                assert!(
                    est_exact == sequential[i],
                    "exact tier diverged from the pinned path on {query}: \
                     {est_exact} vs {}",
                    sequential[i]
                );
            }
            // Tier two: bit-identity is relaxed, but the q-error delta is bounded.
            let delta = (est_fast / est_exact).max(est_exact / est_fast);
            assert!(
                delta.is_finite() && delta <= QERROR_DELTA_BOUND,
                "fast tier drifted past the q-error-delta bound on {query}: \
                 exact {est_exact}, fast {est_fast} (delta {delta:.3} > {QERROR_DELTA_BOUND})"
            );
            max_qerror_delta = max_qerror_delta.max(delta);
        }
    }
    let exact_tier = path_stats(exact_us, config.psamples);
    let fast_tier = path_stats(fast_tier_us, config.psamples);
    let fast_vs_exact = exact_tier.total_secs / fast_tier.total_secs.max(1e-12);
    // The ISSUE's acceptance ratio: SIMD fast mode over the PR-3 scalar serving path.
    let fast_vs_scalar = fast_tier.samples_per_sec / fast.samples_per_sec.max(1e-12);

    println!();
    println!("Two-tier precision (kernel ISA: {isa}), {rounds} rounds:");
    println!(
        "{:<22} {:>12} {:>12} {:>16}",
        "Tier", "p50 (us)", "p99 (us)", "samples/sec"
    );
    println!(
        "{:<22} {:>12.0} {:>12.0} {:>16.0}",
        "exact (pinned)", exact_tier.p50_us, exact_tier.p99_us, exact_tier.samples_per_sec
    );
    println!(
        "{:<22} {:>12.0} {:>12.0} {:>16.0}",
        "fast (simd+bf16)", fast_tier.p50_us, fast_tier.p99_us, fast_tier.samples_per_sec
    );
    println!(
        "fast-tier speedup: {fast_vs_exact:.2}x vs exact tier, {fast_vs_scalar:.2}x vs PR-3 \
         scalar path; max q-error delta {max_qerror_delta:.3} (bound {QERROR_DELTA_BOUND})"
    );

    let json = format!(
        "{{\n  \"bench\": \"inference\",\n  \"smoke\": {},\n  \"queries\": {},\n  \
         \"psamples\": {},\n  \"rounds\": {},\n  \"reference\": {{ \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"samples_per_sec\": {:.0} }},\n  \"fastpath\": {{ \
         \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"samples_per_sec\": {:.0} }},\n  \
         \"batch\": {{ \"total_secs\": {:.4}, \"samples_per_sec\": {:.0} }},\n  \
         \"single_query_speedup\": {:.2},\n  \
         \"precision\": {{ \"isa\": \"{}\", \"exact\": {{ \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"samples_per_sec\": {:.0} }}, \"fast\": {{ \
         \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"samples_per_sec\": {:.0} }}, \
         \"fast_vs_exact_speedup\": {:.2}, \"fast_vs_scalar_speedup\": {:.2}, \
         \"max_qerror_delta\": {:.4}, \"qerror_delta_bound\": {:.1} }}\n}}\n",
        config.smoke,
        queries.len(),
        config.psamples,
        rounds,
        reference.p50_us,
        reference.p99_us,
        reference.samples_per_sec,
        fast.p50_us,
        fast.p99_us,
        fast.samples_per_sec,
        batch_secs,
        batch_samples_per_sec,
        speedup,
        isa,
        exact_tier.p50_us,
        exact_tier.p99_us,
        exact_tier.samples_per_sec,
        fast_tier.p50_us,
        fast_tier.p99_us,
        fast_tier.samples_per_sec,
        fast_vs_exact,
        fast_vs_scalar,
        max_qerror_delta,
        QERROR_DELTA_BOUND,
    );
    let json_path =
        std::env::var("NC_BENCH_JSON").unwrap_or_else(|_| "BENCH_inference.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
