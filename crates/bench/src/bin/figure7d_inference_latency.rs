//! Reproduces **Figure 7d**: per-query inference latency CDF of MSCN, DeepDB and NeuroCard
//! on JOB-light-ranges queries.
//!
//! Paper: MSCN is fastest (a tiny feed-forward net), DeepDB spans ~1–100 ms depending on
//! query complexity, NeuroCard sits at a predictable ~10–20 ms.  The orderings (MSCN ≪
//! NeuroCard, DeepDB's wide spread) are the reproduced shape.

use nc_baselines::{CardinalityEstimator, DeepDbLite, MscnConfig, MscnEstimator};
use nc_bench::harness::{evaluate, print_preamble, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::job_light_ranges_queries;
use neurocard::NeuroCard;

fn latency_quantiles(mut ms: Vec<f64>) -> (f64, f64, f64) {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| ms[((ms.len() - 1) as f64 * q).round() as usize];
    (pick(0.0), pick(0.5), pick(1.0))
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble("Figure 7d: inference latency CDF", &env.name, &config);

    let queries = job_light_ranges_queries(&env.db, &env.schema, config.queries, config.seed);
    let truths = true_cardinalities(&env, &queries);

    let training = job_light_ranges_queries(
        &env.db,
        &env.schema,
        config.queries.max(120),
        config.seed + 3000,
    );
    let labelled: Vec<(nc_schema::Query, f64)> = training
        .iter()
        .map(|q| {
            let card = nc_exec::true_cardinality(&env.db, &env.schema, q) as f64;
            (q.clone(), card.max(1.0))
        })
        .collect();
    let mscn = MscnEstimator::train(
        &env.db,
        env.schema.clone(),
        &labelled,
        &MscnConfig::default(),
    );
    let deepdb = DeepDbLite::build(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let neurocard = NeuroCard::build(env.db.clone(), env.schema.clone(), &config.neurocard());

    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "Estimator", "min (ms)", "median (ms)", "max (ms)"
    );
    for est in [
        &mscn as &dyn CardinalityEstimator,
        &deepdb as &dyn CardinalityEstimator,
        &neurocard as &dyn CardinalityEstimator,
    ] {
        let result = evaluate(est, &queries, &truths);
        let ms: Vec<f64> = result
            .latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1000.0)
            .collect();
        let (min, median, max) = latency_quantiles(ms);
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2}",
            result.name, min, median, max
        );
    }
    println!();
    println!("Paper: MSCN fastest; DeepDB 1-100ms spread; NeuroCard predictable ~12-17ms.");
}
