//! Reproduces **Table 2**: estimation errors on the JOB-light workload for the Postgres
//! baseline, IBJS, MSCN, DeepDB-lite and NeuroCard.
//!
//! Paper numbers (real IMDB, 70 queries):
//!
//! | Estimator | Size | Median | 95th | 99th | Max |
//! |---|---|---|---|---|---|
//! | Postgres | 70KB | 7.97 | 797 | 3e3 | 1e3* |
//! | IBJS | – | 1.48 | 1e3 | 1e3 | 1e4 |
//! | MSCN | 2.7MB | 3.01 | 136 | 1e3 | 1e3 |
//! | DeepDB | 3.7MB | 1.32 | 4.90 | 33.7 | 72.0 |
//! | NeuroCard | 3.8MB | 1.57 | 5.91 | 8.48 | 8.51 |
//!
//! The shape to reproduce: NeuroCard dominates at the tail (99th/max), the data-driven
//! methods beat the query-driven and heuristic ones, and Postgres has the worst median.

use nc_baselines::{DeepDbLite, IbjsEstimator, MscnConfig, MscnEstimator, PostgresLikeEstimator};
use nc_bench::harness::{build_or_load_neurocard, evaluate, print_preamble, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::{job_light_queries, job_light_ranges_queries, print_error_table, ErrorTableRow};

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble("Table 2: JOB-light estimation errors", &env.name, &config);

    let queries = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
    println!(
        "generated {} JOB-light queries; computing true cardinalities...",
        queries.len()
    );
    let truths = true_cardinalities(&env, &queries);

    let mut rows = Vec::new();

    let postgres = PostgresLikeEstimator::build(&env.db, &env.schema);
    let r = evaluate(&postgres, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    let ibjs = IbjsEstimator::new(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let r = evaluate(&ibjs, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    // MSCN trains on a disjoint workload of labelled queries (the paper uses the authors'
    // published training set; here the generator with a different seed plays that role).
    let training = job_light_ranges_queries(
        &env.db,
        &env.schema,
        config.queries.max(100),
        config.seed + 1000,
    );
    let labelled: Vec<(nc_schema::Query, f64)> = training
        .iter()
        .map(|q| {
            let card = nc_exec::true_cardinality(&env.db, &env.schema, q) as f64;
            (q.clone(), card.max(1.0))
        })
        .collect();
    let mscn = MscnEstimator::train(
        &env.db,
        env.schema.clone(),
        &labelled,
        &MscnConfig::default(),
    );
    let r = evaluate(&mscn, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    let deepdb = DeepDbLite::build(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let r = evaluate(&deepdb, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    let model = build_or_load_neurocard(&env, &config);
    let r = evaluate(&model, &queries, &truths);
    rows.push(ErrorTableRow::new(r.name, r.size_bytes, r.summary));

    println!();
    print_error_table("Table 2 (measured, synthetic data)", &rows);
    println!();
    println!("Paper (real IMDB):");
    println!("  Postgres   70KB   median 7.97  p95 797   p99 3e3   max 1e3");
    println!("  IBJS       –      median 1.48  p95 1e3   p99 1e3   max 1e4");
    println!("  MSCN       2.7MB  median 3.01  p95 136   p99 1e3   max 1e3");
    println!("  DeepDB     3.7MB  median 1.32  p95 4.90  p99 33.7  max 72.0");
    println!("  NeuroCard  3.8MB  median 1.57  p95 5.91  p99 8.48  max 8.51");
}
