//! Reproduces **Table 5**: ablation studies on JOB-light-ranges (p50 / p99 Q-errors).
//!
//! Rows:
//!   Base        — the standard NeuroCard configuration,
//!   (A) biased  — train from an IBJS-style biased sampler,
//!   (B) fact.bits — vary the column-factorization width (fewer bits = more sub-columns),
//!   (C) model size — vary `d_ff` / `d_emb`,
//!   (D) one AR per table — per-table models combined under independence,
//!   (E) no model — uniform join samples used directly.
//!
//! Paper (real IMDB): Base 1.9 / 375; (A) 33 / 1e4; (B) 10 bits 2.2 / 2811, 12 bits
//! 2.0 / 936, none 1.6 / 375; (C) larger embeddings help most; (D) 40 / 7e6; (E) 4.0 / 3e6.
//! The shape to reproduce: (A) and (D) blow up, (E) collapses at the tail, (B)/(C) are
//! second-order.

use nc_baselines::{CardinalityEstimator, PerTableArEstimator, UniformJoinSampleEstimator};
use nc_bench::harness::{print_preamble, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_schema::Query;
use nc_workloads::{job_light_ranges_queries, q_error, ErrorSummary};
use neurocard::{estimator::BuildOptions, NeuroCard, NeuroCardConfig};

fn summarise(est: &dyn CardinalityEstimator, queries: &[Query], truths: &[f64]) -> (f64, f64) {
    let errors: Vec<f64> = queries
        .iter()
        .zip(truths)
        .map(|(q, t)| q_error(est.estimate(q), *t))
        .collect();
    let s = ErrorSummary::from_errors(&errors);
    (s.median, s.p99)
}

fn print_row(label: &str, size: usize, p50: f64, p99: f64, paper: &str) {
    println!(
        "{:<28} {:>9} {:>8.2} {:>10.1}   paper: {}",
        label,
        nc_workloads::report::format_size(size),
        p50,
        p99,
        paper
    );
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Table 5: ablation studies (JOB-light-ranges)",
        &env.name,
        &config,
    );

    let queries = job_light_ranges_queries(&env.db, &env.schema, config.queries, config.seed);
    let truths = true_cardinalities(&env, &queries);
    println!("{} queries\n", queries.len());
    println!(
        "{:<28} {:>9} {:>8} {:>10}",
        "Configuration", "Size", "p50", "p99"
    );

    // Base configuration.
    let base_cfg = config.neurocard();
    let base = NeuroCard::build(env.db.clone(), env.schema.clone(), &base_cfg);
    let (p50, p99) = summarise(&base, &queries, &truths);
    print_row(
        "Base (unbiased, fact=10)",
        base.size_bytes(),
        p50,
        p99,
        "1.9 / 375",
    );

    // (A) biased sampler.
    let biased = NeuroCard::build_with(
        env.db.clone(),
        env.schema.clone(),
        &base_cfg,
        BuildOptions {
            dictionary_db: None,
            biased_sampler: true,
        },
    );
    let (p50, p99) = summarise(&biased, &queries, &truths);
    print_row(
        "(A) biased sampler",
        biased.size_bytes(),
        p50,
        p99,
        "33 / 1e4",
    );

    // (B) factorization bits.
    for (bits, paper) in [
        (Some(6u32), "2.2 / 2811 (10 bits)"),
        (Some(8), "2.0 / 936 (12 bits)"),
        (None, "1.6 / 375 (none)"),
    ] {
        let mut cfg = base_cfg.clone();
        cfg.fact_bits = bits;
        let model = NeuroCard::build(env.db.clone(), env.schema.clone(), &cfg);
        let (p50, p99) = summarise(&model, &queries, &truths);
        let label = match bits {
            Some(b) => format!("(B) fact.bits = {b}"),
            None => "(B) fact.bits = none".to_string(),
        };
        print_row(&label, model.size_bytes(), p50, p99, paper);
    }

    // (C) model size.
    for (d_hidden, d_emb, paper) in [
        (64usize, 24usize, "128;64 → 1.5 / 300"),
        (192, 12, "1024;16 → 1.7 / 497"),
    ] {
        let mut cfg = base_cfg.clone();
        cfg.d_hidden = d_hidden;
        cfg.d_emb = d_emb;
        let model = NeuroCard::build(env.db.clone(), env.schema.clone(), &cfg);
        let (p50, p99) = summarise(&model, &queries, &truths);
        print_row(
            &format!("(C) dff={d_hidden}, demb={d_emb}"),
            model.size_bytes(),
            p50,
            p99,
            paper,
        );
    }

    // (D) one AR model per table, combined under independence.
    let per_table = PerTableArEstimator::build(
        env.db.clone(),
        env.schema.clone(),
        &NeuroCardConfig {
            progressive_samples: config.psamples,
            seed: config.seed,
            ..NeuroCardConfig::default()
        },
        config.train_tuples / env.schema.num_tables().max(1),
    );
    let (p50, p99) = summarise(&per_table, &queries, &truths);
    print_row(
        "(D) one AR per table",
        per_table.size_bytes(),
        p50,
        p99,
        "40 / 7e6",
    );

    // (E) no model: uniform join samples only.
    let uniform = UniformJoinSampleEstimator::new(
        env.db.clone(),
        env.schema.clone(),
        config.baseline_samples,
        config.seed,
    );
    let (p50, p99) = summarise(&uniform, &queries, &truths);
    print_row(
        "(E) uniform join samples",
        uniform.size_bytes(),
        p50,
        p99,
        "4.0 / 3e6",
    );

    println!();
    println!("shape check: (A) and (D) should degrade most (median and tail respectively),");
    println!("(E) should collapse at the tail, (B)/(C) should move errors only mildly.");
}
