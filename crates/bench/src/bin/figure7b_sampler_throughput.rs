//! Reproduces **Figure 7b**: training-tuple sampling throughput versus the number of
//! sampler threads.
//!
//! The paper reports ~40K tuples/s peak with four threads saturating the GPU consumer.
//! Here there is no GPU and a single CPU core, so the absolute numbers and the saturation
//! point differ; what is preserved is that the sampler itself parallelises and the
//! per-thread cost is dominated by index lookups.

use std::time::Instant;

use nc_bench::harness::print_preamble;
use nc_bench::{BenchEnv, HarnessConfig};
use nc_sampler::{sample_wide_batch_parallel, JoinSampler, WideLayout};

fn main() {
    let config = HarnessConfig::from_env();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Figure 7b: sampling throughput vs threads",
        &env.name,
        &config,
    );

    let sampler = JoinSampler::new(env.db.clone(), env.schema.clone());
    let layout = WideLayout::new(&env.db, &env.schema);
    let tuples = (config.train_tuples / 2).max(2_000);

    println!("{:>8} {:>16} {:>14}", "threads", "tuples/second", "elapsed");
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let batch = sample_wide_batch_parallel(&sampler, &layout, tuples, threads, config.seed);
        let elapsed = start.elapsed();
        let throughput = batch.len() as f64 / elapsed.as_secs_f64();
        println!(
            "{:>8} {:>16.0} {:>13.2}s",
            threads,
            throughput,
            elapsed.as_secs_f64()
        );
    }
    println!();
    println!("Paper (V100 + 32 vCPUs): 1→4 threads scale throughput to ~40K tuples/s, after");
    println!("which the GPU consumer is saturated.  On this single-core host the curve is");
    println!("flat-to-slightly-decreasing; the interesting number is the absolute per-core");
    println!("sampling rate, which bounds training cost exactly as in §7.4.");
}
