//! Reproduces **Figure 7b**: training-tuple sampling throughput versus the number of
//! sampler threads — and quantifies what the persistent worker pool buys over the old
//! spawn-threads-per-batch scheme.
//!
//! The paper reports ~40K tuples/s peak with four threads saturating the GPU consumer.
//! Here there is no GPU and a single CPU core, so the absolute numbers and the saturation
//! point differ; what is preserved is that the sampler itself parallelises and the
//! per-thread cost is dominated by index lookups.
//!
//! Two measurements:
//!
//! 1. tuples/second versus worker count, drawn through a persistent [`SamplerPool`] in
//!    training-sized batches (the pipeline the trainer actually runs),
//! 2. spawn-per-batch (the legacy [`sample_wide_batch_parallel`] wrapper, which stands up
//!    and tears down its threads on every call) versus one long-lived pool, across batch
//!    sizes.  The smaller the batch, the more the fixed spawn/join cost dominates and the
//!    larger the pool's advantage.

use std::sync::Arc;
use std::time::Instant;

use nc_bench::harness::print_preamble;
use nc_bench::{BenchEnv, HarnessConfig};
use nc_sampler::{sample_wide_batch_parallel, JoinSampler, SamplerPool, WideLayout};

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Figure 7b: sampling throughput vs threads",
        &env.name,
        &config,
    );

    let sampler = Arc::new(JoinSampler::new(env.db.clone(), env.schema.clone()));
    let layout = Arc::new(WideLayout::new(&env.db, &env.schema));
    let tuples = if config.smoke {
        2_000
    } else {
        (config.train_tuples / 2).max(2_000)
    };

    // --- 1. Throughput vs worker count (persistent pool, pipelined submission) ----------
    let batch = 1_024.min(tuples);
    println!("{:>8} {:>16} {:>14}", "threads", "tuples/second", "elapsed");
    for threads in [1usize, 2, 4, 8] {
        // Construct the pool outside the timer: this table reports steady-state sampling
        // throughput (pool amortisation is measured separately below).
        let pool = SamplerPool::new(sampler.clone(), layout.clone(), threads, config.seed, None);
        let start = Instant::now();
        let mut drawn = 0usize;
        let tickets: Vec<_> = batch_sizes(tuples, batch)
            .enumerate()
            .map(|(i, n)| pool.submit_indexed(i as u64, n))
            .collect();
        for t in tickets {
            drawn += t.wait().len();
        }
        let elapsed = start.elapsed();
        assert_eq!(drawn, tuples);
        println!(
            "{:>8} {:>16.0} {:>13.2}s",
            threads,
            drawn as f64 / elapsed.as_secs_f64(),
            elapsed.as_secs_f64()
        );
    }

    // --- 2. Spawn-per-batch vs persistent pool ------------------------------------------
    // Four threads make the per-batch spawn/join cost clearly visible even on a single
    // core: the spawn path pays it `batches` times, the pool once.
    let threads = config.sampler_threads.max(4);
    let compare_tuples = if config.smoke {
        16_384
    } else {
        tuples.max(16_384)
    };
    println!();
    println!("spawn-per-batch vs persistent pool ({threads} threads, {compare_tuples} tuples):");
    println!(
        "{:>10} {:>8} {:>16} {:>16} {:>9}",
        "batch", "batches", "spawn tuples/s", "pool tuples/s", "speedup"
    );
    for batch in [64usize, 128, 512, 2_048] {
        let batches = compare_tuples / batch;

        // Best-of-3 per path: single-core hosts schedule the worker threads noisily, and
        // the best repetition is the least scheduler-polluted estimate of each path's cost.
        let spawn_rate = best_rate(3, batches * batch, || {
            for _ in 0..batches {
                let rows =
                    sample_wide_batch_parallel(&sampler, &layout, batch, threads, config.seed);
                assert_eq!(rows.len(), batch);
            }
        });

        // Pool construction is inside the timing: amortising it is the whole point.
        let pool_rate = best_rate(3, batches * batch, || {
            let pool =
                SamplerPool::new(sampler.clone(), layout.clone(), threads, config.seed, None);
            let tickets: Vec<_> = (0..batches)
                .map(|b| pool.submit_indexed(b as u64, batch))
                .collect();
            for t in tickets {
                assert_eq!(t.wait().len(), batch);
            }
        });

        println!(
            "{:>10} {:>8} {:>16.0} {:>16.0} {:>8.2}x",
            batch,
            batches,
            spawn_rate,
            pool_rate,
            pool_rate / spawn_rate
        );
    }

    println!();
    println!("Paper (V100 + 32 vCPUs): 1→4 threads scale throughput to ~40K tuples/s, after");
    println!("which the GPU consumer is saturated.  The pool-vs-spawn column is this");
    println!("reproduction's addition: at training batch sizes (≤512) the fixed per-batch");
    println!("thread spawn/join cost dominates and the persistent pool wins; at large");
    println!("batches the two converge because sampling itself dominates.");
}

/// Highest tuples/second over `reps` runs of `work` drawing `tuples` tuples each.
fn best_rate(reps: usize, tuples: usize, mut work: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            work();
            tuples as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

/// Splits `total` into `chunk`-sized batches plus a remainder.
fn batch_sizes(total: usize, chunk: usize) -> impl Iterator<Item = usize> {
    let full = total / chunk;
    let rem = total % chunk;
    (0..full)
        .map(move |_| chunk)
        .chain(std::iter::once(rem).filter(|r| *r > 0))
}
