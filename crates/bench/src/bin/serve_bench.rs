//! Benchmarks the **serving layer**: a long-lived registry-routed service over an
//! artifact-loaded model, driven by N client threads at configurable concurrency.
//!
//! Since the registry redesign this binary speaks the transport-independent protocol —
//! clients submit [`nc_serve::ServeRequest`]s selecting "latest NeuroCard for this
//! schema" through a [`nc_serve::RegistryService`] — the same types the TCP front-end
//! and `registry_bench` use.  What it measures, per worker count:
//!
//! * p50 / p99 request latency (queue wait + compute, from the service's own accounting),
//! * sustained queries/sec across all clients,
//! * the same workload over the nonblocking TCP reactor (client-measured round-trip
//!   latency via the shared nearest-rank [`Quantiles`]),
//! * and it **asserts** the serving determinism contract on every run: each estimate
//!   must be bit-identical to a sequential `EstimatorCore::estimate` of the same query,
//!   regardless of worker count, transport, or interleaving.
//!
//! The model is loaded through the full persistence path (train → artifact bytes →
//! registry), so this binary doubles as the end-to-end artifact smoke test, and with
//! `--save-artifact <path>` (or `NC_SAVE_ARTIFACT`) it exports the trained artifact —
//! CI runs it first and feeds the cached artifact to the table1–3 smoke runs.
//!
//! Knobs: `NC_SERVE_WORKERS` (comma list of worker counts, default `1,2,4`),
//! `NC_SERVE_CLIENTS` (client threads, default 4), `NC_SERVE_ROUNDS` (workload
//! repetitions per client, default 3), `NC_SERVE_QUEUE` (queue depth, default 32).
//! Writes a machine-readable `BENCH_serve.json` (path overridable via
//! `NC_BENCH_SERVE_JSON`).

use std::sync::Arc;
use std::time::Instant;

use nc_bench::harness::{build_or_load_neurocard, print_preamble};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_serve::{
    ModelRegistry, ModelSelector, Quantiles, RegistryService, ServeClient, ServeRequest,
    ServiceConfig, TcpServer,
};
use nc_workloads::job_light_queries;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One row of `BENCH_serve.json` (serialised via the serde shim, like `HarnessConfig`).
#[derive(serde::Serialize)]
struct RunResult {
    workers: usize,
    served: usize,
    p50_us: f64,
    p99_us: f64,
    queries_per_sec: f64,
}

/// The TCP reactor phase: the same workload through real sockets.
#[derive(serde::Serialize)]
struct TcpResult {
    served: u64,
    p50_us: f64,
    p99_us: f64,
    queries_per_sec: f64,
}

/// The machine-readable benchmark record CI archives.
#[derive(serde::Serialize)]
struct ServeBenchRecord {
    bench: String,
    smoke: bool,
    queries: usize,
    psamples: usize,
    clients: usize,
    rounds: usize,
    queue_depth: usize,
    artifact_bytes: usize,
    schema_fingerprint: String,
    runs: Vec<RunResult>,
    tcp: TcpResult,
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble(
        "Serve bench: registry-routed concurrent serving",
        &env.name,
        &config,
    );

    let worker_counts = env_list("NC_SERVE_WORKERS", &[1, 2, 4]);
    let clients = env_usize("NC_SERVE_CLIENTS", if config.smoke { 3 } else { 4 });
    let rounds = env_usize("NC_SERVE_ROUNDS", 3);
    let queue_depth = env_usize("NC_SERVE_QUEUE", 32);

    // Train (or load from the artifact cache), then force the full persistence path:
    // everything below serves from parsed artifact bytes, never from the trainer.
    let model = build_or_load_neurocard(&env, &config);
    let artifact_bytes = model.to_artifact().to_bytes();
    println!(
        "artifact: {} bytes ({} params, |J| = {})\n",
        artifact_bytes.len(),
        model.stats().num_params,
        model.full_join_rows()
    );

    let queries = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
    let artifact = neurocard::ModelArtifact::from_bytes(&artifact_bytes)
        .expect("round-tripping the just-written artifact");
    let fingerprint = artifact.schema_fingerprint();
    let core = Arc::new(
        artifact
            .to_core()
            .expect("loading the just-written weights"),
    );
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();
    let selector = ModelSelector::latest(fingerprint, "neurocard");

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>14}",
        "Workers", "served", "p50 (us)", "p99 (us)", "queries/sec"
    );
    let mut results = Vec::new();
    for &workers in &worker_counts {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .register_core("neurocard", core.clone())
            .expect("fresh registry");
        let service = RegistryService::new(
            registry,
            ServiceConfig {
                workers,
                queue_depth,
                default_samples: Some(config.psamples),
            },
        );

        let start = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..clients {
                let handle = service.handle();
                let queries = &queries;
                let sequential = &sequential;
                let selector = &selector;
                scope.spawn(move || {
                    for round in 0..rounds {
                        // Each client walks the workload at a different offset so the
                        // queue sees interleaved, not lock-step, request streams.
                        for i in 0..queries.len() {
                            let idx = (i + client + round) % queries.len();
                            let reply = handle
                                .request(
                                    ServeRequest::new(selector.clone(), queries[idx].clone())
                                        .with_samples(config.psamples),
                                )
                                .expect("workload queries are valid");
                            assert!(
                                reply.estimate.to_bits() == sequential[idx].to_bits(),
                                "service diverged from sequential estimate on query {idx}: \
                                 {} vs {}",
                                reply.estimate,
                                sequential[idx]
                            );
                        }
                    }
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let stats = service.shutdown();
        let qps = stats.served as f64 / wall.max(1e-12);
        println!(
            "{:<10} {:>10} {:>12.0} {:>12.0} {:>14.0}",
            workers, stats.served, stats.p50_us, stats.p99_us, qps
        );
        results.push(RunResult {
            workers,
            served: stats.served,
            p50_us: stats.p50_us,
            p99_us: stats.p99_us,
            queries_per_sec: qps,
        });
    }

    // ---- The same workload over the nonblocking TCP reactor ---------------------------
    // Concurrent blocking clients over real sockets: client-measured round-trip
    // latency (socket + framing + queue + compute), determinism asserted per reply.
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_core("neurocard", core.clone())
        .expect("fresh registry");
    let server = TcpServer::bind(registry, "127.0.0.1:0").expect("binding loopback");
    let addr = server.local_addr();
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let (queries, sequential, selector) = (&queries, &sequential, &selector);
                scope.spawn(move || {
                    let mut conn = ServeClient::connect(addr).expect("connecting to loopback");
                    let mut us = Vec::with_capacity(rounds * queries.len());
                    for round in 0..rounds {
                        for i in 0..queries.len() {
                            let idx = (i + client + round) % queries.len();
                            let t = Instant::now();
                            let reply = conn
                                .request(
                                    &ServeRequest::new(selector.clone(), queries[idx].clone())
                                        .with_samples(config.psamples),
                                )
                                .expect("workload queries are valid over the wire");
                            us.push(t.elapsed().as_secs_f64() * 1e6);
                            assert!(
                                reply.estimate.to_bits() == sequential[idx].to_bits(),
                                "TCP estimate diverged from the sequential core on query {idx}"
                            );
                        }
                    }
                    us
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let tcp_wall = start.elapsed().as_secs_f64();
    let tcp_served = server.served();
    assert_eq!(tcp_served as usize, clients * rounds * queries.len());
    server.shutdown();
    let q = Quantiles::of(latencies);
    let tcp_qps = tcp_served as f64 / tcp_wall.max(1e-12);
    println!(
        "{:<10} {:>10} {:>12.0} {:>12.0} {:>14.0}   (TCP reactor, {clients} clients)",
        "tcp", tcp_served, q.p50, q.p99, tcp_qps
    );

    println!();
    println!(
        "determinism verified: every served estimate — in-process and over TCP — was \
         bit-identical to the sequential core (workers ∈ {worker_counts:?}, {clients} \
         clients, {rounds} rounds)"
    );

    let record = ServeBenchRecord {
        bench: "serve".to_string(),
        smoke: config.smoke,
        queries: queries.len(),
        psamples: config.psamples,
        clients,
        rounds,
        queue_depth,
        artifact_bytes: artifact_bytes.len(),
        schema_fingerprint: format!("{fingerprint:016x}"),
        runs: results,
        tcp: TcpResult {
            served: tcp_served,
            p50_us: q.p50,
            p99_us: q.p99,
            queries_per_sec: tcp_qps,
        },
    };
    let json = serde_json::to_string_pretty(&record).expect("record serialisation");
    let json_path =
        std::env::var("NC_BENCH_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
