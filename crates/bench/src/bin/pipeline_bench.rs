//! Pipeline benchmark: the continuous-retraining control plane, end to end, as a
//! machine-readable record.
//!
//! Runs the full drift → retrain → shadow → promote loop of `nc_pipeline` over the
//! seeded drifting demo stream and records what the control plane did: drift
//! detections, retrains, shadow comparisons, promotions/retirements, and the
//! per-stage latencies (retrain wall time, shadow-serve p99s).  The run then
//! replays at the same seed and certifies the decision digests are bit-identical.
//! What the record asserts, per run:
//!
//! * `wrong_estimates` is **always 0** — no non-finite or negative estimate ever
//!   reached a comparison,
//! * `promotions >= 1` — the drifting stream forced at least one auto-promotion,
//! * `replay_digest_matches` is `true` — the whole decision sequence is a pure
//!   function of the seed.
//!
//! Knobs: `NC_PIPELINE_SEED` (default 53411), `NC_PIPELINE_STEPS` (default 16;
//! `--smoke` drops it to 8).  Writes `BENCH_pipeline.json` (path overridable via
//! `NC_BENCH_PIPELINE_JSON`).

use std::sync::Arc;
use std::time::Instant;

use nc_bench::HarnessConfig;
use nc_pipeline::{demo_env, DriftingSource, Pipeline, PipelineConfig, PipelineReport};
use nc_sampler::seed::derive_stream_seed;
use nc_serve::ModelRegistry;
use neurocard::{NeuroCard, NeuroCardConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The machine-readable control-plane record CI archives.
#[derive(serde::Serialize)]
struct PipelineBenchRecord {
    bench: String,
    smoke: bool,
    seed: u64,
    steps: u64,
    ingested_rows: u64,
    drift_detections: u64,
    retrains: u64,
    retrain_aborts: u64,
    shadow_comparisons: u64,
    shadow_drops: u64,
    promotions: u64,
    retirements: u64,
    wrong_estimates: u64,
    oracle_errors: u64,
    retrain_wall_us_total: u64,
    retrain_wall_us_max: u64,
    incumbent_p99_us_max: u64,
    candidate_p99_us_max: u64,
    replay_digest_matches: bool,
    wall_secs: f64,
}

fn run_once(seed: u64, steps: u64, dir: &std::path::Path) -> PipelineReport {
    let env = demo_env(seed);
    let train = NeuroCardConfig::tiny()
        .with_training_tuples(600)
        .with_seed(derive_stream_seed(seed, 0, 2));
    let artifact = NeuroCard::train(env.db.clone(), env.schema.clone(), &train);
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_core(
            "demo",
            Arc::new(artifact.to_core().expect("fresh artifact loads")),
        )
        .expect("fresh registry");
    let config = PipelineConfig::new(seed, dir).with_model_name("demo");
    let mut pipeline = Pipeline::new(
        config,
        registry,
        None,
        env.schema.clone(),
        env.db.clone(),
        DriftingSource::new(seed, 3),
    )
    .expect("pipeline startup");
    pipeline.run(steps).expect("pipeline run")
}

fn main() {
    let config = HarnessConfig::from_cli();
    let seed = env_u64("NC_PIPELINE_SEED", 53_411);
    let steps = if config.smoke {
        8
    } else {
        env_u64("NC_PIPELINE_STEPS", 16)
    };
    println!("Pipeline bench: continuous retraining control plane");
    println!("seed {seed}: {steps} steps over the drifting demo stream\n");

    let dir = std::env::temp_dir().join(format!("nc-pipeline-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let start = Instant::now();
    let report = run_once(seed, steps, &dir);
    let wall = start.elapsed().as_secs_f64();

    // Replay: the decision digest — every drift verdict, shadow median, promotion —
    // must be a pure function of the seed.
    let replay_dir = dir.join("replay");
    let replay = run_once(seed, steps, &replay_dir);
    let replay_digest_matches = report.digest() == replay.digest();
    let _ = std::fs::remove_dir_all(&dir);

    let c = &report.counters;
    println!(
        "{} steps  |  {} drift detections  |  {} retrains ({} aborted)  |  \
         {} shadow samples ({} dropped)  |  {} promotions  |  {} retirements",
        c.steps,
        c.drift_detections,
        c.retrains,
        c.retrain_aborts,
        c.shadow_comparisons,
        c.shadow_drops,
        c.promotions,
        c.retirements
    );
    for s in &report.steps {
        let verdict = match (&s.promoted, &s.retired) {
            (Some(key), _) => format!("promoted {key}"),
            (_, Some(reason)) => format!("retired: {reason}"),
            _ if s.drift_fired => "retrain aborted".to_string(),
            _ => "quiet".to_string(),
        };
        println!(
            "  step {:>2}  qerr {:>7.3}  shift {:>6.3}  {}",
            s.step, s.median_qerr, s.shift, verdict
        );
    }

    assert_eq!(
        c.wrong_estimates, 0,
        "a pipeline run must never surface a wrong estimate"
    );
    assert!(
        c.promotions >= 1,
        "the drifting stream must force at least one promotion"
    );
    assert!(
        replay_digest_matches,
        "the same seed must replay every decision bit-identically"
    );

    let record = PipelineBenchRecord {
        bench: "pipeline".to_string(),
        smoke: config.smoke,
        seed,
        steps: c.steps,
        ingested_rows: c.ingested_rows,
        drift_detections: c.drift_detections,
        retrains: c.retrains,
        retrain_aborts: c.retrain_aborts,
        shadow_comparisons: c.shadow_comparisons,
        shadow_drops: c.shadow_drops,
        promotions: c.promotions,
        retirements: c.retirements,
        wrong_estimates: c.wrong_estimates,
        oracle_errors: c.oracle_errors,
        retrain_wall_us_total: report.steps.iter().map(|s| s.retrain_wall_us).sum(),
        retrain_wall_us_max: report
            .steps
            .iter()
            .map(|s| s.retrain_wall_us)
            .max()
            .unwrap_or(0),
        incumbent_p99_us_max: report
            .steps
            .iter()
            .filter_map(|s| s.shadow.as_ref())
            .map(|s| s.incumbent_p99_us)
            .max()
            .unwrap_or(0),
        candidate_p99_us_max: report
            .steps
            .iter()
            .filter_map(|s| s.shadow.as_ref())
            .map(|s| s.candidate_p99_us)
            .max()
            .unwrap_or(0),
        replay_digest_matches,
        wall_secs: wall,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serialisation");
    let json_path = std::env::var("NC_BENCH_PIPELINE_JSON")
        .unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
