//! Reproduces **Figure 7a**: estimation accuracy (p99 Q-error) versus the number of tuples
//! trained, on JOB-light and JOB-light-ranges.
//!
//! The paper's observation: 2–3M tuples (≈0.001% of the full join) already reach
//! best-in-class accuracy; more tuples give diminishing returns.  At this reproduction's
//! scale the same saturation curve appears at proportionally fewer tuples.

use std::sync::Arc;

use nc_bench::harness::{print_preamble, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_schema::Query;
use nc_workloads::{job_light_queries, job_light_ranges_queries, q_error, ErrorSummary};
use neurocard::NeuroCard;

fn p99(model: &NeuroCard, queries: &[Query], truths: &[f64]) -> f64 {
    let errors: Vec<f64> = queries
        .iter()
        .zip(truths)
        .map(|(q, t)| q_error(model.estimate(q), *t))
        .collect();
    ErrorSummary::from_errors(&errors).p99
}

fn main() {
    let config = HarnessConfig::from_cli();
    let env = BenchEnv::job_light(&config);
    print_preamble("Figure 7a: accuracy vs tuples trained", &env.name, &config);

    let light = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
    let ranges = job_light_ranges_queries(&env.db, &env.schema, config.queries, config.seed + 1);
    let light_truths = true_cardinalities(&env, &light);
    let ranges_truths = true_cardinalities(&env, &ranges);

    // Train in increments and evaluate after each checkpoint.
    let total = config.train_tuples;
    let checkpoints = [total / 8, total / 8, total / 4, total / 2]; // cumulative: 1/8, 1/4, 1/2, 1
    let mut cfg = config.neurocard();
    cfg.training_tuples = checkpoints[0];
    let mut model = NeuroCard::build(env.db.clone(), env.schema.clone(), &cfg);

    println!(
        "{:>14} {:>22} {:>22}",
        "tuples", "p99 (JOB-light)", "p99 (JOB-light-ranges)"
    );
    let mut trained = checkpoints[0];
    println!(
        "{:>14} {:>22.1} {:>22.1}",
        trained,
        p99(&model, &light, &light_truths),
        p99(&model, &ranges, &ranges_truths)
    );
    for step in &checkpoints[1..] {
        model.update_incremental(*step);
        trained += step;
        println!(
            "{:>14} {:>22.1} {:>22.1}",
            trained,
            p99(&model, &light, &light_truths),
            p99(&model, &ranges, &ranges_truths)
        );
    }
    let _ = Arc::strong_count(&env.db);
    println!();
    println!("Paper: p99 drops steeply over the first ~2-3M tuples then flattens; the same");
    println!("monotone-then-flat shape should appear here at this reproduction's scale.");
}
