//! Shared plumbing for the per-experiment binaries.

use std::sync::Arc;
use std::time::{Duration, Instant};

use nc_baselines::CardinalityEstimator;
use nc_datagen::{
    job_light_database, job_light_schema, job_m_database, job_m_schema, DataGenConfig,
};
use nc_schema::{JoinSchema, Query};
use nc_storage::Database;
use nc_workloads::{q_error, ErrorSummary};
use neurocard::{NeuroCard, NeuroCardConfig};

/// Scale knobs of a harness run, read from the environment.
///
/// Round-trips through JSON via the serde shim's `Deserialize`/`from_json` path
/// (`serde_json::{to_string, from_str}`), so a run's exact configuration can be archived
/// next to its `BENCH_*.json` record and replayed later.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HarnessConfig {
    /// Rows of the synthetic `title` table.
    pub title_rows: usize,
    /// Queries per workload.
    pub queries: usize,
    /// NeuroCard training tuples.
    pub train_tuples: usize,
    /// Progressive samples per query.
    pub psamples: usize,
    /// Sample budget for the sampling-based baselines.
    pub baseline_samples: usize,
    /// NeuroCard sampler pool threads.
    pub sampler_threads: usize,
    /// NeuroCard training prefetch depth (batches sampled ahead of training).
    pub prefetch_depth: usize,
    /// Global seed.
    pub seed: u64,
    /// Whether this is a `--smoke` run (tiny budgets; used by CI to execute, not just
    /// compile, the experiment binaries).
    pub smoke: bool,
    /// Path to a cached [`neurocard::ModelArtifact`] to serve NeuroCard from instead of
    /// retraining (`NC_ARTIFACT` / `--artifact <path>`); ignored with a warning when the
    /// artifact does not match this run's schema + config.
    pub artifact_path: Option<String>,
    /// Where to write the trained model's artifact after building
    /// (`NC_SAVE_ARTIFACT` / `--save-artifact <path>`); this is how CI caches one
    /// `--smoke` model for the other smoke runs.
    pub save_artifact_path: Option<String>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl HarnessConfig {
    /// Reads the configuration from the `NC_*` environment variables.
    pub fn from_env() -> Self {
        HarnessConfig {
            title_rows: env_usize("NC_TITLE_ROWS", 800),
            queries: env_usize("NC_QUERIES", 40),
            train_tuples: env_usize("NC_TRAIN_TUPLES", 30_000),
            psamples: env_usize("NC_PSAMPLES", 64),
            baseline_samples: env_usize("NC_SAMPLES_BASELINE", 4_000),
            sampler_threads: env_usize("NC_SAMPLER_THREADS", 2),
            prefetch_depth: env_usize("NC_PREFETCH", 1),
            seed: env_usize("NC_SEED", 42) as u64,
            smoke: false,
            artifact_path: std::env::var("NC_ARTIFACT").ok(),
            save_artifact_path: std::env::var("NC_SAVE_ARTIFACT").ok(),
        }
    }

    /// Reads the environment configuration, then applies command-line flags: `--smoke`
    /// switches to the [`HarnessConfig::tiny`] budgets so the binary finishes in seconds,
    /// `--artifact <path>` / `--save-artifact <path>` override the artifact cache paths.
    /// This is the entry point every experiment binary uses, and what CI invokes to
    /// *run* (not merely compile) the benches.
    pub fn from_cli() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut config = if args.iter().any(|a| a == "--smoke") {
            HarnessConfig {
                smoke: true,
                artifact_path: std::env::var("NC_ARTIFACT").ok(),
                save_artifact_path: std::env::var("NC_SAVE_ARTIFACT").ok(),
                ..Self::tiny()
            }
        } else {
            Self::from_env()
        };
        let flag_value = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| match args.get(i + 1) {
                    // A following token that is itself a flag means the value was
                    // forgotten; ignoring it silently would misconfigure the run.
                    Some(v) if !v.starts_with("--") => Some(v.clone()),
                    _ => {
                        eprintln!("warning: {flag} needs a <path> argument; ignoring it");
                        None
                    }
                })
        };
        if let Some(path) = flag_value("--artifact") {
            config.artifact_path = Some(path);
        }
        if let Some(path) = flag_value("--save-artifact") {
            config.save_artifact_path = Some(path);
        }
        config
    }

    /// A deliberately tiny configuration for integration tests of the harness itself.
    pub fn tiny() -> Self {
        HarnessConfig {
            title_rows: 150,
            queries: 8,
            train_tuples: 3_000,
            psamples: 32,
            baseline_samples: 800,
            sampler_threads: 2,
            prefetch_depth: 1,
            seed: 42,
            smoke: false,
            artifact_path: None,
            save_artifact_path: None,
        }
    }

    /// The data-generation config corresponding to this harness configuration.
    pub fn datagen(&self) -> DataGenConfig {
        DataGenConfig {
            seed: self.seed,
            title_rows: self.title_rows,
            ..DataGenConfig::default()
        }
    }

    /// The NeuroCard configuration corresponding to this harness configuration.
    pub fn neurocard(&self) -> NeuroCardConfig {
        let mut cfg = NeuroCardConfig::default();
        cfg.training_tuples = self.train_tuples;
        cfg.progressive_samples = self.psamples;
        cfg.sampler_threads = self.sampler_threads;
        cfg.prefetch_depth = self.prefetch_depth;
        cfg.seed = self.seed;
        cfg
    }
}

/// A generated benchmark environment: database, schema and the name of the workload.
pub struct BenchEnv {
    /// The synthetic database.
    pub db: Arc<Database>,
    /// Its join schema.
    pub schema: Arc<JoinSchema>,
    /// Display name (e.g. `"JOB-light (synthetic)"`).
    pub name: String,
}

impl BenchEnv {
    /// Builds the synthetic JOB-light environment.
    pub fn job_light(config: &HarnessConfig) -> Self {
        BenchEnv {
            db: Arc::new(job_light_database(&config.datagen())),
            schema: Arc::new(job_light_schema()),
            name: "JOB-light (synthetic)".to_string(),
        }
    }

    /// Builds the synthetic JOB-M environment (smaller fact table by default: the full
    /// join is much wider).
    pub fn job_m(config: &HarnessConfig) -> Self {
        let mut dg = config.datagen();
        dg.title_rows = (config.title_rows / 2).max(100);
        BenchEnv {
            db: Arc::new(job_m_database(&dg)),
            schema: Arc::new(job_m_schema()),
            name: "JOB-M (synthetic)".to_string(),
        }
    }
}

/// Evaluation result of one estimator over one workload.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Estimator name.
    pub name: String,
    /// Estimator size in bytes.
    pub size_bytes: usize,
    /// Q-error summary.
    pub summary: ErrorSummary,
    /// Per-query estimation latencies.
    pub latencies: Vec<Duration>,
}

/// Builds the NeuroCard estimator for `env`, honouring the artifact cache knobs:
///
/// * if `config.artifact_path` names a readable artifact whose schema **and** estimator
///   config match this run, NeuroCard is loaded from it instead of retrained (loaded
///   models estimate bit-identically to freshly trained ones — the PR-4 contract — so
///   benchmark numbers are unchanged);
/// * otherwise the model is trained as before, and if `config.save_artifact_path` is set
///   the trained artifact is written there for later runs (what CI does once per job).
pub fn build_or_load_neurocard(env: &BenchEnv, config: &HarnessConfig) -> NeuroCard {
    let nc_config = config.neurocard();
    if let Some(path) = &config.artifact_path {
        match std::fs::read(path)
            .map_err(|e| e.to_string())
            .and_then(|b| NeuroCard::from_artifact_bytes(&b).map_err(|e| e.to_string()))
        {
            Ok(model) => {
                // The whole join structure must match, not just the table set: a model
                // trained over different edges or a different root would silently
                // estimate the wrong join.  |J| ties the artifact to the *data* as well
                // — the schema and config are identical across database scales (e.g.
                // different NC_TITLE_ROWS), but the join counts are not.  Computing
                // them costs one sampler-preparation pass, far below retraining.
                let env_join_rows =
                    nc_sampler::JoinCounts::compute(&env.db, &env.schema).full_join_rows();
                if model.schema().tables() == env.schema.tables()
                    && model.schema().edges() == env.schema.edges()
                    && model.schema().root() == env.schema.root()
                    && model.full_join_rows() == env_join_rows
                    && model.config() == &nc_config
                {
                    println!(
                        "loaded NeuroCard from artifact {path} ({} params, |J| = {})",
                        model.stats().num_params,
                        model.full_join_rows()
                    );
                    return model;
                }
                eprintln!("artifact {path} does not match this run's schema/config; retraining");
            }
            Err(e) => eprintln!("could not load artifact {path}: {e}; retraining"),
        }
    }
    println!(
        "training NeuroCard ({} tuples)...",
        nc_config.training_tuples
    );
    let model = NeuroCard::build(env.db.clone(), env.schema.clone(), &nc_config);
    if let Some(path) = &config.save_artifact_path {
        let bytes = model.to_artifact().to_bytes();
        match std::fs::write(path, &bytes) {
            Ok(()) => println!("saved model artifact to {path} ({} bytes)", bytes.len()),
            Err(e) => eprintln!("could not save artifact to {path}: {e}"),
        }
    }
    model
}

/// True cardinalities of a workload (floor 1, matching the Q-error convention).
pub fn true_cardinalities(env: &BenchEnv, queries: &[Query]) -> Vec<f64> {
    queries
        .iter()
        .map(|q| (nc_exec::true_cardinality(&env.db, &env.schema, q) as f64).max(1.0))
        .collect()
}

/// Runs an estimator over a workload and summarises its Q-errors and latencies.
pub fn evaluate(
    estimator: &dyn CardinalityEstimator,
    queries: &[Query],
    truths: &[f64],
) -> EvalResult {
    assert_eq!(queries.len(), truths.len());
    let mut errors = Vec::with_capacity(queries.len());
    let mut latencies = Vec::with_capacity(queries.len());
    for (query, truth) in queries.iter().zip(truths) {
        let start = Instant::now();
        let estimate = estimator.estimate(query);
        latencies.push(start.elapsed());
        errors.push(q_error(estimate, *truth));
    }
    EvalResult {
        name: estimator.name().to_string(),
        size_bytes: estimator.size_bytes(),
        summary: ErrorSummary::from_errors(&errors),
        latencies,
    }
}

/// Pretty-prints a duration in seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Prints the standard harness preamble (workload, scale, substitution disclaimer).
pub fn print_preamble(experiment: &str, env_name: &str, config: &HarnessConfig) {
    println!("=== {experiment} ===");
    println!("workload: {env_name}");
    println!(
        "scale: title_rows={} queries={} train_tuples={} psamples={} sampler_threads={} \
         prefetch={} seed={}{}",
        config.title_rows,
        config.queries,
        config.train_tuples,
        config.psamples,
        config.sampler_threads,
        config.prefetch_depth,
        config.seed,
        if config.smoke { " (smoke run)" } else { "" }
    );
    println!(
        "note: data is the synthetic IMDB substitute (see DESIGN.md §1); absolute numbers \
         differ from the paper, the method ordering / error shape is what is reproduced.\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_baselines::PostgresLikeEstimator;
    use nc_workloads::job_light_queries;

    #[test]
    fn harness_end_to_end_with_postgres_baseline() {
        let config = HarnessConfig::tiny();
        let env = BenchEnv::job_light(&config);
        let queries = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
        assert!(!queries.is_empty());
        let truths = true_cardinalities(&env, &queries);
        let postgres = PostgresLikeEstimator::build(&env.db, &env.schema);
        let result = evaluate(&postgres, &queries, &truths);
        assert_eq!(result.name, "Postgres-like");
        assert_eq!(result.latencies.len(), queries.len());
        assert!(result.summary.median >= 1.0);
        print_preamble("smoke", &env.name, &config);
        assert!(!secs(Duration::from_millis(1500)).is_empty());
    }

    #[test]
    fn harness_config_round_trips_through_json() {
        let mut config = HarnessConfig::tiny();
        config.smoke = true;
        config.artifact_path = Some("model.ncar".into());
        let text = serde_json::to_string_pretty(&config).unwrap();
        let back: HarnessConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, config);
        // Hand-written partial configs work too: absent Option fields become None.
        let partial: HarnessConfig = serde_json::from_str(
            "{\"title_rows\":10,\"queries\":2,\"train_tuples\":100,\"psamples\":4,\
             \"baseline_samples\":50,\"sampler_threads\":1,\"prefetch_depth\":0,\
             \"seed\":7,\"smoke\":false}",
        )
        .unwrap();
        assert_eq!(partial.title_rows, 10);
        assert_eq!(partial.artifact_path, None);
    }

    #[test]
    fn artifact_cache_round_trip() {
        let mut config = HarnessConfig::tiny();
        config.train_tuples = 600;
        config.title_rows = 80;
        let env = BenchEnv::job_light(&config);
        let path = std::env::temp_dir().join("nc_harness_artifact_test.ncar");
        let path_str = path.to_string_lossy().to_string();

        // First build trains and saves...
        config.save_artifact_path = Some(path_str.clone());
        let trained = build_or_load_neurocard(&env, &config);
        assert!(path.exists());

        // ...second build loads and estimates identically.
        config.save_artifact_path = None;
        config.artifact_path = Some(path_str.clone());
        let loaded = build_or_load_neurocard(&env, &config);
        assert!(!loaded.is_trainable());
        let q = nc_workloads::job_light_queries(&env.db, &env.schema, 4, config.seed);
        for query in &q {
            assert_eq!(
                trained.estimate(query).to_bits(),
                loaded.estimate(query).to_bits()
            );
        }

        // A mismatched config falls back to training.
        let mut other = config.clone();
        other.train_tuples = 700;
        let retrained = build_or_load_neurocard(&env, &other);
        assert!(retrained.is_trainable());

        // Same schema + config but a different-scale database (different |J|) must also
        // fall back — the cached dictionaries would not cover the new data.
        let mut scaled = config.clone();
        scaled.title_rows = 120;
        let scaled_env = BenchEnv::job_light(&scaled);
        let retrained = build_or_load_neurocard(&scaled_env, &scaled);
        assert!(retrained.is_trainable());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn env_parsing_defaults() {
        let c = HarnessConfig::from_env();
        assert!(c.title_rows > 0 && c.queries > 0);
        assert!(c.sampler_threads > 0);
        assert!(!c.smoke);
        let dg = c.datagen();
        assert_eq!(dg.title_rows, c.title_rows);
        let nc = c.neurocard();
        assert_eq!(nc.training_tuples, c.train_tuples);
        assert_eq!(nc.sampler_threads, c.sampler_threads);
        assert_eq!(nc.prefetch_depth, c.prefetch_depth);
        // The test harness is not a smoke run, so from_cli falls back to the env path.
        let cli = HarnessConfig::from_cli();
        assert_eq!(cli.train_tuples, c.train_tuples);
    }
}
