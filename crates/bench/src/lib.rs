//! # nc-bench
//!
//! The reproduction harness: one binary per table/figure of the paper's evaluation plus a
//! set of Criterion micro-benchmarks.  See `DESIGN.md` §4 for the experiment → binary map
//! and `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! Every binary reads its scale knobs from environment variables (with defaults sized for
//! a single CPU core) and prints, next to each measured number, the value the paper reports
//! on the real IMDB data, so the *shape* of the result can be checked at a glance.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `NC_TITLE_ROWS` | rows of the synthetic `title` fact table | 800 |
//! | `NC_QUERIES` | queries per workload | 40 |
//! | `NC_TRAIN_TUPLES` | NeuroCard training tuples | 30000 |
//! | `NC_PSAMPLES` | progressive samples per query | 64 |
//! | `NC_SAMPLES_BASELINE` | per-query / per-template samples for IBJS, DeepDB-lite, uniform-sample baselines | 4000 |
//! | `NC_SAMPLER_THREADS` | NeuroCard sampler pool worker threads | 2 |
//! | `NC_PREFETCH` | training batches prefetched ahead of the one being trained on | 1 |
//! | `NC_SEED` | global seed | 42 |
//!
//! Passing `--smoke` on the command line overrides everything with the tiny test budgets;
//! CI uses it to execute the key binaries end-to-end rather than just compiling them.

pub mod harness;

pub use harness::{BenchEnv, EvalResult, HarnessConfig};
