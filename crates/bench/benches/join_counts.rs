//! Criterion micro-benchmark: Exact Weight join-count computation (the "13 seconds for
//! JOB-light" preparation step of §4.1), measured on the synthetic JOB-light schema.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_sampler::JoinCounts;

fn bench_join_counts(c: &mut Criterion) {
    let schema = job_light_schema();
    let mut group = c.benchmark_group("join_counts");
    group.sample_size(10);
    for title_rows in [200usize, 800] {
        let cfg = DataGenConfig {
            title_rows,
            ..DataGenConfig::default()
        };
        let db = job_light_database(&cfg);
        group.bench_with_input(BenchmarkId::new("job_light", title_rows), &db, |b, db| {
            b.iter(|| {
                let counts = JoinCounts::compute(db, &schema);
                std::hint::black_box(counts.full_join_rows())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_counts);
criterion_main!(benches);
