//! Criterion micro-benchmark: lossless column factorization primitives (§5) — code
//! splitting/recombination and digit-wise range translation.

use criterion::{criterion_group, criterion_main, Criterion};
use neurocard::Factorization;

fn bench_factorization(c: &mut Criterion) {
    let fact = Factorization::new(1_000_000, 10);
    let codes: Vec<u32> = (0..4096u32).map(|i| (i * 911) % 1_000_000).collect();

    let mut group = c.benchmark_group("factorization");
    group.bench_function("split_combine_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &code in &codes {
                let digits = fact.split(code);
                acc ^= fact.combine(&digits);
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("digit_range_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &code in &codes {
                let digits = fact.split(code);
                let (lo, hi) = fact.digit_range(1_000, 999_000, &digits[..1], 1);
                acc ^= lo ^ hi;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_factorization);
criterion_main!(benches);
