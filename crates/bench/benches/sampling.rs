//! Criterion micro-benchmark: full-outer-join sampling throughput (unbiased Exact Weight
//! sampler vs the biased IBJS-style walk), i.e. the producer side of Figure 7b.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_sampler::{BiasedSampler, JoinSampler, WideLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let cfg = DataGenConfig {
        title_rows: 400,
        ..DataGenConfig::default()
    };
    let db = Arc::new(job_light_database(&cfg));
    let schema = Arc::new(job_light_schema());
    let sampler = JoinSampler::new(db.clone(), schema.clone());
    let biased = BiasedSampler::new(db.clone(), schema.clone());
    let layout = WideLayout::new(&db, &schema);

    let mut group = c.benchmark_group("sampling");
    group.sample_size(20);
    group.bench_function("exact_weight_256", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(sampler.sample_many(&mut rng, 256)))
    });
    group.bench_function("biased_ibjs_256", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(biased.sample_many(&mut rng, 256)))
    });
    group.bench_function("materialize_wide_256", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sampler.sample_many(&mut rng, 256);
        b.iter(|| std::hint::black_box(layout.materialize_batch(&db, &samples)))
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
