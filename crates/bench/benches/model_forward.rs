//! Criterion micro-benchmark: ResMADE forward/backward training steps and conditional
//! probability evaluation (the per-batch cost behind Figures 7a–7c).

use criterion::{criterion_group, criterion_main, Criterion};
use nc_nn::{Adam, AdamConfig, MadeConfig, ResMade};

fn model() -> ResMade {
    ResMade::new(MadeConfig {
        domains: vec![64, 256, 32, 16, 128, 8, 3, 3, 3, 12, 12, 12],
        d_emb: 12,
        d_hidden: 96,
        num_blocks: 2,
        seed: 1,
    })
}

fn batch(model: &ResMade, n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            (0..model.num_columns())
                .map(|c| (i as u32 * 7 + c as u32) % model.domain(c) as u32)
                .collect()
        })
        .collect()
}

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("resmade");
    group.sample_size(20);

    group.bench_function("forward_backward_batch128", |b| {
        let mut m = model();
        let mut adam = Adam::for_params(AdamConfig::default(), &m.params());
        let rows = batch(&m, 128);
        b.iter(|| {
            let loss = m.forward_backward(&rows, &rows);
            adam.step(&mut m.params_mut());
            std::hint::black_box(loss)
        })
    });

    group.bench_function("conditional_probs_batch64", |b| {
        let m = model();
        let rows = batch(&m, 64);
        b.iter(|| std::hint::black_box(m.conditional_probs(&rows, 6)))
    });

    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
