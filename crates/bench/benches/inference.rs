//! Criterion micro-benchmark: end-to-end progressive-sampling inference latency of a small
//! trained NeuroCard (the per-query cost behind Figure 7d).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_schema::{Predicate, Query};
use neurocard::{NeuroCard, NeuroCardConfig};

fn bench_inference(c: &mut Criterion) {
    let cfg = DataGenConfig {
        title_rows: 300,
        ..DataGenConfig::default()
    };
    let db = Arc::new(job_light_database(&cfg));
    let schema = Arc::new(job_light_schema());
    let mut nc_cfg = NeuroCardConfig::tiny();
    nc_cfg.training_tuples = 4_000;
    nc_cfg.progressive_samples = 64;
    let model = NeuroCard::build(db, schema, &nc_cfg);

    let q2 = Query::join(&["title", "cast_info"]).filter(
        "title",
        "production_year",
        Predicate::ge(2000i64),
    );
    let q4 = Query::join(&["title", "cast_info", "movie_keyword", "movie_info"])
        .filter("title", "production_year", Predicate::le(2005i64))
        .filter("cast_info", "role_id", Predicate::eq(2i64));

    let mut group = c.benchmark_group("progressive_sampling");
    group.sample_size(10);
    group.bench_function("two_table_query", |b| {
        b.iter(|| std::hint::black_box(model.estimate(&q2)))
    });
    group.bench_function("four_table_query", |b| {
        b.iter(|| std::hint::black_box(model.estimate(&q4)))
    });
    group.bench_function("psamples_16_vs_64", |b| {
        b.iter(|| std::hint::black_box(model.estimate_with_samples(&q4, 16)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
