//! Index-Based Join Sampling (IBJS, Leis et al. 2017) used directly as a cardinality
//! estimator.
//!
//! For a query, the estimator draws root tuples uniformly, applies the root filters, and
//! walks the query's join tree through the base-table indexes.  At every child table it
//! counts the join partners that pass the child's filters, multiplies the tuple's weight by
//! that count, and continues the walk from *one* randomly chosen partner (a
//! Horvitz–Thompson style estimate, the same estimator family as Wander Join).  The
//! estimate is unbiased for counts but — exactly as the paper observes — its variance
//! explodes for low-selectivity queries over many joins, because most walks die early.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_schema::{JoinSchema, Query, TableFilter};
use nc_storage::{Database, RowId};

use crate::estimator::CardinalityEstimator;

/// The IBJS estimator.
pub struct IbjsEstimator {
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
    /// Maximum number of root samples per query (the paper uses 10 000).
    max_samples: usize,
    seed: u64,
}

impl IbjsEstimator {
    /// Creates an IBJS estimator with the given per-query sample budget.
    pub fn new(db: Arc<Database>, schema: Arc<JoinSchema>, max_samples: usize, seed: u64) -> Self {
        IbjsEstimator {
            db,
            schema,
            max_samples: max_samples.max(1),
            seed,
        }
    }

    fn row_passes(&self, table: &str, row: RowId, filters: &[&TableFilter]) -> bool {
        let t = self.db.expect_table(table);
        filters.iter().all(|f| {
            let col = t
                .column(&f.column)
                .unwrap_or_else(|| panic!("missing filter column {}.{}", f.table, f.column));
            f.predicate.matches(&col.value(row as usize))
        })
    }

    /// Walks the query subtree below `table` starting from `row`; returns the estimated
    /// number of join combinations contributed (0 if the walk dies).
    fn walk(&self, query: &Query, table: &str, row: RowId, rng: &mut StdRng) -> f64 {
        let mut weight = 1.0;
        for child in self.schema.children(table) {
            if !query.joins(child) {
                continue;
            }
            let edges = self.schema.edges_between(table, child);
            let parent_table = self.db.expect_table(table);
            // Matching child rows via index lookups (intersection for composite keys).
            let mut matches: Option<Vec<RowId>> = None;
            for edge in &edges {
                let pcol = &edge.endpoint(table).expect("touches parent").column;
                let ccol = &edge.endpoint(child).expect("touches child").column;
                let key = parent_table.value(pcol, row);
                if key.is_null() {
                    return 0.0;
                }
                let index = self.db.index(child, ccol);
                let rows = index.lookup(&key).to_vec();
                matches = Some(match matches {
                    None => rows,
                    Some(prev) => prev.into_iter().filter(|r| rows.contains(r)).collect(),
                });
            }
            let filters = query.filters_on(child);
            let surviving: Vec<RowId> = matches
                .unwrap_or_default()
                .into_iter()
                .filter(|r| self.row_passes(child, *r, &filters))
                .collect();
            if surviving.is_empty() {
                return 0.0;
            }
            weight *= surviving.len() as f64;
            // Continue the walk from one random survivor.
            let next = surviving[rng.random_range(0..surviving.len())];
            let below = self.walk(query, child, next, rng);
            if below == 0.0 {
                return 0.0;
            }
            weight *= below;
        }
        weight
    }
}

impl CardinalityEstimator for IbjsEstimator {
    fn name(&self) -> &str {
        "IBJS"
    }

    fn estimate(&self, query: &Query) -> f64 {
        query
            .validate(&self.schema)
            .unwrap_or_else(|e| panic!("invalid query {query}: {e}"));
        let root = nc_exec::cardinality::query_subtree_root(&self.schema, query);
        let root_table = self.db.expect_table(&root);
        let n = root_table.num_rows();
        if n == 0 {
            return 1.0;
        }
        let samples = self.max_samples.min(n.max(1) * 4);
        let mut rng = StdRng::seed_from_u64(self.seed ^ query.render().len() as u64);
        let root_filters = query.filters_on(&root);
        let mut total = 0.0f64;
        for _ in 0..samples {
            let row = rng.random_range(0..n) as RowId;
            if !self.row_passes(&root, row, &root_filters) {
                continue;
            }
            total += self.walk(query, &root, row, &mut rng);
        }
        ((n as f64 / samples as f64) * total).max(1.0)
    }
}

impl IbjsEstimator {
    /// Exposes the underlying value type for documentation examples.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::{TableBuilder, Value};

    fn star() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["id", "year"]);
        for i in 0..300i64 {
            a.push_row(vec![Value::Int(i), Value::Int(2000 + i % 20)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["movie_id", "kind"]);
        for i in 0..300i64 {
            for k in 0..(i % 4) {
                b.push_row(vec![Value::Int(i), Value::Int(k)]);
            }
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.id", "B.movie_id")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn unfiltered_join_estimate_is_close() {
        let (db, schema) = star();
        let est = IbjsEstimator::new(db.clone(), schema.clone(), 2_000, 1);
        assert_eq!(est.name(), "IBJS");
        let q = Query::join(&["A", "B"]);
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let guess = est.estimate(&q);
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 1.5, "guess {guess} truth {truth}");
        assert_eq!(est.database().num_tables(), 2);
    }

    #[test]
    fn filtered_estimates_track_truth_roughly() {
        let (db, schema) = star();
        let est = IbjsEstimator::new(db.clone(), schema.clone(), 3_000, 2);
        let q = Query::join(&["A", "B"])
            .filter("A", "year", Predicate::ge(2015i64))
            .filter("B", "kind", Predicate::eq(2i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let guess = est.estimate(&q);
        let qerr = (guess / truth.max(1.0)).max(truth.max(1.0) / guess);
        assert!(qerr < 3.0, "guess {guess} truth {truth}");
        // Size is reported as zero (no materialised state beyond indexes).
        assert_eq!(est.size_bytes(), 0);
    }

    #[test]
    fn single_table_queries_work() {
        let (db, schema) = star();
        let est = IbjsEstimator::new(db.clone(), schema.clone(), 1_000, 3);
        let q = Query::join(&["B"]).filter("B", "kind", Predicate::eq(0i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let guess = est.estimate(&q);
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 1.6, "guess {guess} truth {truth}");
    }
}
