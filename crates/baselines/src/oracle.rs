//! The oracle "estimator": exact answers from the ground-truth executor.
//!
//! Used by tests (an estimator with Q-error exactly 1) and by the harness to compute the
//! true cardinalities that Q-errors are measured against.

use std::sync::Arc;

use nc_schema::{JoinSchema, Query};
use nc_storage::Database;

use crate::estimator::CardinalityEstimator;

/// Exact cardinalities via `nc-exec`.
pub struct OracleEstimator {
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
}

impl OracleEstimator {
    /// Creates the oracle over a database.
    pub fn new(db: Arc<Database>, schema: Arc<JoinSchema>) -> Self {
        OracleEstimator { db, schema }
    }

    /// The exact cardinality as an integer.
    pub fn true_cardinality(&self, query: &Query) -> u128 {
        nc_exec::true_cardinality(&self.db, &self.schema, query)
    }
}

impl CardinalityEstimator for OracleEstimator {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn estimate(&self, query: &Query) -> f64 {
        (self.true_cardinality(query) as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::Predicate;
    use nc_storage::{TableBuilder, Value};

    #[test]
    fn oracle_matches_executor() {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        for i in 0..10i64 {
            a.push_row(vec![Value::Int(i % 3)]);
        }
        db.add_table(a.finish());
        let schema = JoinSchema::new(vec!["A".into()], vec![], "A").unwrap();
        let oracle = OracleEstimator::new(Arc::new(db), Arc::new(schema));
        let q = Query::join(&["A"]).filter("A", "x", Predicate::eq(0i64));
        assert_eq!(oracle.true_cardinality(&q), 4);
        assert_eq!(oracle.estimate(&q), 4.0);
        assert_eq!(oracle.name(), "Oracle");
        let empty = Query::join(&["A"]).filter("A", "x", Predicate::eq(99i64));
        assert_eq!(oracle.estimate(&empty), 1.0);
    }
}
