//! DeepDB-lite: per-table-pair densities combined under conditional independence.
//!
//! DeepDB (Hilprecht et al. 2020) learns one sum-product network per heuristically chosen
//! table subset (typically the fact table plus one dimension/child table) and combines the
//! subsets under conditional independence.  This reproduction keeps that *structure* —
//! which is what the paper's comparison is about — while simplifying the per-subset density
//! model:
//!
//! * for every join edge `(parent, child)` of the schema a **pair model** is built from `n`
//!   uniform samples of the pair's full outer join (drawn with the same Exact Weight
//!   sampler NeuroCard uses, which is *more* favourable than DeepDB's own IBJS/full-join
//!   ingestion),
//! * a query's selectivity is decomposed along its join tree:
//!   `P(all filters) ≈ P(root filters) · Π_edges P(child filters | parent filters)`,
//!   each conditional estimated from the corresponding pair sample,
//! * the unfiltered inner-join size of the query graph is computed exactly from the join
//!   counts (DeepDB likewise represents PK/FK join sizes essentially exactly via its fanout
//!   bookkeeping).
//!
//! What it cannot capture — and what the paper's Table 2/3 gaps come from — is correlation
//! between columns of *different* child tables, or any effect requiring more than two
//! tables to be modelled jointly.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_sampler::{JoinSampler, WideLayout};
use nc_schema::{JoinSchema, Query};
use nc_storage::{Database, Value};

use crate::estimator::CardinalityEstimator;
use crate::sampling::subset_schema;

/// Samples of one (parent, child) pair's full outer join.
struct PairModel {
    parent: String,
    child: String,
    layout: WideLayout,
    rows: Vec<Vec<Value>>,
}

/// The DeepDB-lite estimator.
pub struct DeepDbLite {
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
    pairs: Vec<PairModel>,
    /// Single-table sample of the root (for root-only conditioning).
    root_rows: Vec<Vec<Value>>,
    root_layout: WideLayout,
    /// Cache of unfiltered inner-join sizes per table subset.
    join_size_cache: Mutex<HashMap<Vec<String>, f64>>,
    samples_per_pair: usize,
}

impl DeepDbLite {
    /// Builds the pair models with `samples_per_pair` samples each.
    pub fn build(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        samples_per_pair: usize,
        seed: u64,
    ) -> Self {
        let samples_per_pair = samples_per_pair.max(10);
        let mut pairs = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for table in schema.tables() {
            if let Some(parent) = schema.parent(table) {
                let sub = Arc::new(subset_schema(&schema, &[parent.to_string(), table.clone()]));
                let sampler = JoinSampler::new(db.clone(), sub.clone());
                let layout = WideLayout::new(&db, &sub);
                let samples = sampler.sample_many(&mut rng, samples_per_pair);
                let rows = layout.materialize_batch(&db, &samples);
                pairs.push(PairModel {
                    parent: parent.to_string(),
                    child: table.clone(),
                    layout,
                    rows,
                });
            }
        }
        // Root-only sample.
        let root = schema.root().to_string();
        let root_schema = Arc::new(subset_schema(&schema, &[root.clone()]));
        let root_sampler = JoinSampler::new(db.clone(), root_schema.clone());
        let root_layout = WideLayout::new(&db, &root_schema);
        let samples = root_sampler.sample_many(&mut rng, samples_per_pair);
        let root_rows = root_layout.materialize_batch(&db, &samples);

        DeepDbLite {
            db,
            schema,
            pairs,
            root_rows,
            root_layout,
            join_size_cache: Mutex::new(HashMap::new()),
            samples_per_pair,
        }
    }

    /// Fraction of `rows` satisfying the filters of `query` restricted to `tables`
    /// (conditioned on `condition_tables`' filters also holding), using only inner-join
    /// rows of the pair.
    fn conditional_fraction(
        layout: &WideLayout,
        rows: &[Vec<Value>],
        query: &Query,
        target_table: &str,
        condition_table: Option<&str>,
    ) -> f64 {
        let passes = |row: &Vec<Value>, table: &str| -> bool {
            query.filters_on(table).iter().all(|f| {
                let idx = layout
                    .index_of(&f.table, &f.column)
                    .unwrap_or_else(|| panic!("unknown filter column {}.{}", f.table, f.column));
                f.predicate.matches(&row[idx])
            })
        };
        let inner = |row: &Vec<Value>| -> bool {
            layout
                .table_order()
                .iter()
                .all(|t| row[layout.indicator_index(t).expect("indicator")] == Value::Int(1))
        };
        let mut denom = 0usize;
        let mut num = 0usize;
        for row in rows {
            if !inner(row) {
                continue;
            }
            let cond_ok = match condition_table {
                Some(c) => passes(row, c),
                None => true,
            };
            if !cond_ok {
                continue;
            }
            denom += 1;
            if passes(row, target_table) {
                num += 1;
            }
        }
        if denom == 0 {
            // No conditioning support in the sample: fall back to an uninformative guess.
            0.5
        } else {
            (num as f64 / denom as f64).max(1e-6)
        }
    }

    fn unfiltered_join_size(&self, tables: &[String]) -> f64 {
        let mut key = tables.to_vec();
        key.sort();
        if let Some(&v) = self.join_size_cache.lock().get(&key) {
            return v;
        }
        let refs: Vec<&str> = tables.iter().map(|s| s.as_str()).collect();
        let size = nc_exec::inner_join_count(&self.db, &self.schema, &refs) as f64;
        self.join_size_cache.lock().insert(key, size);
        size
    }
}

impl CardinalityEstimator for DeepDbLite {
    fn name(&self) -> &str {
        "DeepDB-lite"
    }

    fn estimate(&self, query: &Query) -> f64 {
        query
            .validate(&self.schema)
            .unwrap_or_else(|e| panic!("invalid query {query}: {e}"));
        let join_size = self.unfiltered_join_size(&query.tables);
        if join_size == 0.0 {
            return 1.0;
        }

        // Root-of-the-query selectivity.
        let query_root = nc_exec::cardinality::query_subtree_root(&self.schema, query);
        let mut selectivity = if query_root == self.schema.root() {
            Self::conditional_fraction(&self.root_layout, &self.root_rows, query, &query_root, None)
        } else {
            // The query does not include the schema root: condition the first pair on
            // nothing and use the child marginal from the pair containing it.
            let pair = self
                .pairs
                .iter()
                .find(|p| p.child == query_root)
                .expect("every non-root table appears as a child in exactly one pair");
            Self::conditional_fraction(&pair.layout, &pair.rows, query, &query_root, None)
        };
        if query.filters_on(&query_root).is_empty() {
            selectivity = 1.0;
        }

        // Conditional factors along the query tree edges.
        for table in &query.tables {
            if table == &query_root {
                continue;
            }
            let parent = match self.schema.parent(table) {
                Some(p) if query.joins(p) => p.to_string(),
                _ => continue,
            };
            if query.filters_on(table).is_empty() {
                continue;
            }
            let pair = self
                .pairs
                .iter()
                .find(|p| p.child == *table && p.parent == parent)
                .expect("pair model exists for every schema edge");
            let cond =
                Self::conditional_fraction(&pair.layout, &pair.rows, query, table, Some(&parent));
            selectivity *= cond;
        }

        (join_size * selectivity).max(1.0)
    }

    fn size_bytes(&self) -> usize {
        let pair_cells: usize = self
            .pairs
            .iter()
            .map(|p| p.rows.len() * p.layout.len())
            .sum();
        (pair_cells + self.root_rows.len() * self.root_layout.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::TableBuilder;

    /// Star with two children whose content columns are correlated *with each other*
    /// (through the parent id's parity) — exactly what pairwise models cannot see.
    fn star() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["id", "year"]);
        for i in 0..300i64 {
            a.push_row(vec![Value::Int(i), Value::Int(2000 + (i % 2) * 10)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["movie_id", "kind"]);
        for i in 0..300i64 {
            b.push_row(vec![Value::Int(i), Value::Int(i % 2)]);
        }
        db.add_table(b.finish());
        let mut c = TableBuilder::new("C", &["movie_id", "tag"]);
        for i in 0..300i64 {
            c.push_row(vec![Value::Int(i), Value::Int(i % 2)]);
        }
        db.add_table(c.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![
                JoinEdge::parse("A.id", "B.movie_id"),
                JoinEdge::parse("A.id", "C.movie_id"),
            ],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn pairwise_queries_are_accurate_cross_child_queries_are_not() {
        let (db, schema) = star();
        let est = DeepDbLite::build(db.clone(), schema.clone(), 4_000, 3);
        assert_eq!(est.name(), "DeepDB-lite");
        assert!(est.size_bytes() > 0);

        // Parent/child-correlated query: the pair model captures it.
        let q = Query::join(&["A", "B"])
            .filter("A", "year", Predicate::eq(2000i64))
            .filter("B", "kind", Predicate::eq(0i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64; // 150
        let guess = est.estimate(&q);
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 2.0, "guess {guess} truth {truth}");

        // Cross-child correlation (B.kind = 0 AND C.tag = 1 never co-occur): conditional
        // independence predicts ~75 rows while the truth is 0.
        let q = Query::join(&["A", "B", "C"])
            .filter("B", "kind", Predicate::eq(0i64))
            .filter("C", "tag", Predicate::eq(1i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        assert_eq!(truth, 0.0);
        let guess = est.estimate(&q);
        assert!(
            guess > 20.0,
            "conditional independence should over-estimate, got {guess}"
        );
    }

    #[test]
    fn queries_without_root_still_work() {
        let (db, schema) = star();
        let est = DeepDbLite::build(db.clone(), schema.clone(), 2_000, 4);
        let q = Query::join(&["B"]).filter("B", "kind", Predicate::eq(1i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let guess = est.estimate(&q);
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 2.0, "guess {guess} truth {truth}");
    }
}
