//! One autoregressive model per table, combined under independence (ablation Table 5,
//! row D: "one AR per table").
//!
//! Each base table gets its own single-table NeuroCard model (which is exactly Naru, the
//! single-table estimator NeuroCard builds on).  A join query is estimated as
//!
//! ```text
//! |T₁ ⋈ … ⋈ T_k|ₑₛₜ · Π_i  sel_i(filters on T_i)
//! ```
//!
//! where the per-table selectivities come from the per-table models and the unfiltered join
//! size uses the same join-uniformity formula as the Postgres-like baseline.  The point of
//! the ablation is that no amount of per-table modelling quality recovers the *cross-table*
//! correlations, which is where the error comes from.

use std::collections::HashMap;
use std::sync::Arc;

use nc_schema::{JoinSchema, Query};
use nc_storage::Database;

use neurocard::{NeuroCard, NeuroCardConfig};

use crate::estimator::CardinalityEstimator;

/// The per-table AR baseline.
pub struct PerTableArEstimator {
    schema: Arc<JoinSchema>,
    models: HashMap<String, NeuroCard>,
    table_rows: HashMap<String, f64>,
    join_key_ndv: HashMap<(String, String), usize>,
}

impl PerTableArEstimator {
    /// Trains one single-table model per schema table.
    ///
    /// `per_table_tuples` is the training budget per table (the ablation keeps the total
    /// budget comparable to the single NeuroCard model).
    pub fn build(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        config: &NeuroCardConfig,
        per_table_tuples: usize,
    ) -> Self {
        let mut models = HashMap::new();
        let mut table_rows = HashMap::new();
        let mut join_key_ndv = HashMap::new();
        for table in schema.tables() {
            let single = Arc::new(
                JoinSchema::new(vec![table.clone()], vec![], table.clone())
                    .expect("single-table schemas are always valid"),
            );
            let mut cfg = config.clone();
            cfg.training_tuples = per_table_tuples;
            let model = NeuroCard::build(db.clone(), single, &cfg);
            models.insert(table.clone(), model);
            let t = db.expect_table(table);
            table_rows.insert(table.clone(), t.num_rows() as f64);
            for key_col in schema.join_key_columns(table) {
                let ndv = t
                    .column(&key_col)
                    .map(|c| c.distinct_count())
                    .unwrap_or(1)
                    .max(1);
                join_key_ndv.insert((table.clone(), key_col), ndv);
            }
        }
        PerTableArEstimator {
            schema,
            models,
            table_rows,
            join_key_ndv,
        }
    }

    fn ndv(&self, table: &str, column: &str) -> usize {
        self.join_key_ndv
            .get(&(table.to_string(), column.to_string()))
            .copied()
            .unwrap_or(1)
            .max(1)
    }
}

impl CardinalityEstimator for PerTableArEstimator {
    fn name(&self) -> &str {
        "PerTableAR"
    }

    fn estimate(&self, query: &Query) -> f64 {
        // Unfiltered join size via join uniformity.
        let mut size: f64 = query
            .tables
            .iter()
            .map(|t| self.table_rows.get(t).copied().unwrap_or(1.0).max(1.0))
            .product();
        for t in &query.tables {
            if let Some(parent) = self.schema.parent(t) {
                if !query.joins(parent) {
                    continue;
                }
                for edge in self.schema.edges_between(parent, t) {
                    let left = self.ndv(&edge.left.table, &edge.left.column);
                    let right = self.ndv(&edge.right.table, &edge.right.column);
                    size /= left.max(right) as f64;
                }
            }
        }

        // Per-table selectivities from the single-table models, combined independently.
        let mut selectivity = 1.0f64;
        for table in &query.tables {
            let filters = query.filters_on(table);
            if filters.is_empty() {
                continue;
            }
            let model = self.models.get(table).expect("model per schema table");
            let mut single = Query::join(&[table.as_str()]);
            for f in filters {
                single = single.filter(f.table.clone(), f.column.clone(), f.predicate.clone());
            }
            let rows = self.table_rows.get(table).copied().unwrap_or(1.0).max(1.0);
            selectivity *= (model.estimate(&single) / rows).clamp(1e-12, 1.0);
        }

        (size * selectivity).max(1.0)
    }

    fn size_bytes(&self) -> usize {
        self.models.values().map(|m| m.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::{TableBuilder, Value};

    /// Cross-table correlation: B rows exist only for A.cls = 0 movies.
    fn correlated() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["id", "cls"]);
        for i in 0..200i64 {
            a.push_row(vec![Value::Int(i), Value::Int(i % 2)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["movie_id", "v"]);
        for i in 0..200i64 {
            if i % 2 == 0 {
                for k in 0..2 {
                    b.push_row(vec![Value::Int(i), Value::Int(k)]);
                }
            }
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.id", "B.movie_id")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn misses_cross_table_correlation_but_handles_single_tables() {
        let (db, schema) = correlated();
        let config = NeuroCardConfig::tiny();
        let est = PerTableArEstimator::build(db.clone(), schema.clone(), &config, 1_500);
        assert_eq!(est.name(), "PerTableAR");
        assert!(est.size_bytes() > 0);

        // Single-table query: the per-table model handles it fine.
        let q = Query::join(&["A"]).filter("A", "cls", Predicate::eq(1i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let guess = est.estimate(&q);
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 4.0, "guess {guess} truth {truth}");

        // Join query whose filter is perfectly anti-correlated with join existence:
        // σ(cls=1)(A) ⋈ B is empty, but independence predicts ~half the join size.
        let q = Query::join(&["A", "B"]).filter("A", "cls", Predicate::eq(1i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64; // = 0
        assert_eq!(truth, 0.0);
        let guess = est.estimate(&q);
        assert!(
            guess > 20.0,
            "independence should grossly over-estimate here, got {guess}"
        );
    }
}
