//! The common estimator interface shared by NeuroCard and every baseline.

use nc_schema::Query;

/// A cardinality estimator: given a validated query over the schema it was built for,
/// return an estimated row count (≥ 1, following the paper's Q-error convention).
pub trait CardinalityEstimator {
    /// Short display name used in result tables (e.g. `"Postgres-like"`).
    fn name(&self) -> &str;

    /// Estimated number of rows of `query`.
    fn estimate(&self, query: &Query) -> f64;

    /// Approximate size of the estimator's state in bytes (the "Size" column of the
    /// paper's tables); `0` for estimators with no materialised state.
    fn size_bytes(&self) -> usize {
        0
    }
}

/// Blanket implementation so a trained [`neurocard::NeuroCard`] can be used anywhere a
/// baseline can.
impl CardinalityEstimator for neurocard::NeuroCard {
    fn name(&self) -> &str {
        "NeuroCard"
    }

    fn estimate(&self, query: &Query) -> f64 {
        neurocard::NeuroCard::estimate(self, query)
    }

    fn size_bytes(&self) -> usize {
        neurocard::NeuroCard::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    #[test]
    fn trait_object_usage() {
        let est: Box<dyn CardinalityEstimator> = Box::new(Fixed(42.0));
        assert_eq!(est.name(), "fixed");
        assert_eq!(est.estimate(&Query::join(&["t"])), 42.0);
        assert_eq!(est.size_bytes(), 0);
    }
}
