//! The common estimator interface shared by NeuroCard and every baseline.
//!
//! The trait is deliberately **object-safe** — the benchmark harness evaluates
//! `&dyn CardinalityEstimator`, and the serving layer registers heterogeneous models as
//! `Arc<dyn CardinalityEstimator + Send + Sync>` — and the forwarding impls below make
//! references and smart pointers (`&T`, `Box<T>`, `Arc<T>`, including their `dyn` forms)
//! usable wherever a concrete estimator is.

use nc_schema::Query;

/// A cardinality estimator: given a validated query over the schema it was built for,
/// return an estimated row count (≥ 1, following the paper's Q-error convention).
pub trait CardinalityEstimator {
    /// Short display name used in result tables (e.g. `"Postgres-like"`).
    fn name(&self) -> &str;

    /// Estimated number of rows of `query`.
    fn estimate(&self, query: &Query) -> f64;

    /// Approximate size of the estimator's state in bytes (the "Size" column of the
    /// paper's tables); `0` for estimators with no materialised state.
    fn size_bytes(&self) -> usize {
        0
    }
}

// The compile-time guarantee the serving layer's registry relies on.
const _: Option<&dyn CardinalityEstimator> = None;

macro_rules! impl_forwarding {
    ($($ty:ty),*) => {$(
        impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for $ty {
            fn name(&self) -> &str {
                (**self).name()
            }
            fn estimate(&self, query: &Query) -> f64 {
                (**self).estimate(query)
            }
            fn size_bytes(&self) -> usize {
                (**self).size_bytes()
            }
        }
    )*};
}
impl_forwarding!(&T, Box<T>, std::sync::Arc<T>);

/// Blanket implementation so a trained [`neurocard::NeuroCard`] can be used anywhere a
/// baseline can.
impl CardinalityEstimator for neurocard::NeuroCard {
    fn name(&self) -> &str {
        "NeuroCard"
    }

    fn estimate(&self, query: &Query) -> f64 {
        neurocard::NeuroCard::estimate(self, query)
    }

    fn size_bytes(&self) -> usize {
        neurocard::NeuroCard::size_bytes(self)
    }
}

/// The artifact-loaded estimation engine is an estimator too: this is what lets the
/// serving registry treat a database-free [`neurocard::EstimatorCore`] and any baseline
/// uniformly (the registry keeps a scratch-pool fast path for cores on top of this).
impl CardinalityEstimator for neurocard::EstimatorCore {
    fn name(&self) -> &str {
        "NeuroCard"
    }

    fn estimate(&self, query: &Query) -> f64 {
        neurocard::EstimatorCore::estimate(self, query)
    }

    fn size_bytes(&self) -> usize {
        neurocard::EstimatorCore::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl CardinalityEstimator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    #[test]
    fn trait_object_usage() {
        let est: Box<dyn CardinalityEstimator> = Box::new(Fixed(42.0));
        assert_eq!(est.name(), "fixed");
        assert_eq!(est.estimate(&Query::join(&["t"])), 42.0);
        assert_eq!(est.size_bytes(), 0);
    }

    #[test]
    fn forwarding_impls_behave_like_the_inner_estimator() {
        let q = Query::join(&["t"]);
        let inner = Fixed(7.0);
        assert_eq!((&inner).estimate(&q), 7.0);
        assert_eq!((&inner).name(), "fixed");

        let boxed: Box<dyn CardinalityEstimator> = Box::new(Fixed(8.0));
        // A Box<dyn ...> is itself an estimator (double indirection still forwards).
        assert_eq!(CardinalityEstimator::estimate(&boxed, &q), 8.0);

        let shared: std::sync::Arc<dyn CardinalityEstimator + Send + Sync> =
            std::sync::Arc::new(Fixed(9.0));
        assert_eq!(CardinalityEstimator::estimate(&shared, &q), 9.0);
        assert_eq!(shared.name(), "fixed");
        assert_eq!(shared.size_bytes(), 0);
    }
}
