//! Uniform join samples used directly as an estimator (ablation Table 5, row E: "No model;
//! uniform join samples only").
//!
//! For every distinct join template (set of joined tables) the estimator prepares an Exact
//! Weight sampler over just those tables and materialises `n` uniform samples of their full
//! outer join.  A query is then estimated as
//! `|J_template| · (fraction of samples that are inner-join rows and pass all filters)`.
//!
//! The paper's point, reproduced here, is that even *perfect* uniform sampling without a
//! density model collapses at the tail: low-selectivity queries get zero sample hits and
//! the estimate defaults to the minimum.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_sampler::{JoinSampler, WideLayout};
use nc_schema::{JoinSchema, Query};
use nc_storage::{Database, Value};

use crate::estimator::CardinalityEstimator;

/// Cached per-template state: the wide layout, the materialised samples and `|J|`.
struct TemplateSamples {
    layout: WideLayout,
    rows: Vec<Vec<Value>>,
    full_join_rows: f64,
}

/// The sampling-only estimator.
pub struct UniformJoinSampleEstimator {
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
    samples_per_template: usize,
    seed: u64,
    cache: Mutex<HashMap<Vec<String>, Arc<TemplateSamples>>>,
}

/// Builds the join sub-schema induced by a connected subset of tables.
pub fn subset_schema(schema: &JoinSchema, tables: &[String]) -> JoinSchema {
    let set: Vec<String> = tables.to_vec();
    let edges = schema
        .edges()
        .iter()
        .filter(|e| set.contains(&e.left.table) && set.contains(&e.right.table))
        .cloned()
        .collect();
    // Root: the subset table closest to the schema root.
    let root = schema
        .bfs_order()
        .iter()
        .find(|t| set.contains(t))
        .expect("subset is non-empty")
        .clone();
    JoinSchema::new(set, edges, root).expect("connected query subsets form valid schemas")
}

impl UniformJoinSampleEstimator {
    /// Creates the estimator with a per-template sample budget (the paper uses 10⁴).
    pub fn new(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        samples_per_template: usize,
        seed: u64,
    ) -> Self {
        UniformJoinSampleEstimator {
            db,
            schema,
            samples_per_template: samples_per_template.max(1),
            seed,
            cache: Mutex::new(HashMap::new()),
        }
    }

    fn template(&self, tables: &[String]) -> Arc<TemplateSamples> {
        let mut key = tables.to_vec();
        key.sort();
        if let Some(t) = self.cache.lock().get(&key) {
            return t.clone();
        }
        let sub = subset_schema(&self.schema, tables);
        let sub = Arc::new(sub);
        let sampler = JoinSampler::new(self.db.clone(), sub.clone());
        let layout = WideLayout::new(&self.db, &sub);
        let mut rng = StdRng::seed_from_u64(self.seed ^ key.len() as u64);
        let samples = sampler.sample_many(&mut rng, self.samples_per_template);
        let rows = layout.materialize_batch(&self.db, &samples);
        let t = Arc::new(TemplateSamples {
            layout,
            rows,
            full_join_rows: sampler.full_join_rows() as f64,
        });
        self.cache.lock().insert(key, t.clone());
        t
    }
}

impl CardinalityEstimator for UniformJoinSampleEstimator {
    fn name(&self) -> &str {
        "UniformJoinSamples"
    }

    fn estimate(&self, query: &Query) -> f64 {
        query
            .validate(&self.schema)
            .unwrap_or_else(|e| panic!("invalid query {query}: {e}"));
        let template = self.template(&query.tables);
        let layout = &template.layout;
        let mut hits = 0usize;
        for row in &template.rows {
            // Inner-join rows only: every joined table's indicator must be 1.
            let inner = query
                .tables
                .iter()
                .all(|t| row[layout.indicator_index(t).expect("indicator")] == Value::Int(1));
            if !inner {
                continue;
            }
            let passes = query.filters.iter().all(|f| {
                let idx = layout
                    .index_of(&f.table, &f.column)
                    .unwrap_or_else(|| panic!("unknown filter column {}.{}", f.table, f.column));
                f.predicate.matches(&row[idx])
            });
            if passes {
                hits += 1;
            }
        }
        let fraction = hits as f64 / template.rows.len() as f64;
        (template.full_join_rows * fraction).max(1.0)
    }

    fn size_bytes(&self) -> usize {
        // Rough: 8 bytes per stored cell across all cached templates.
        let cache = self.cache.lock();
        cache
            .values()
            .map(|t| t.rows.len() * t.layout.len() * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::TableBuilder;

    fn db_and_schema() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["id", "year"]);
        for i in 0..200i64 {
            a.push_row(vec![Value::Int(i), Value::Int(2000 + i % 10)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["movie_id", "kind"]);
        for i in 0..200i64 {
            for k in 0..3 {
                b.push_row(vec![Value::Int(i), Value::Int(k)]);
            }
        }
        db.add_table(b.finish());
        let mut c = TableBuilder::new("C", &["movie_id", "tag"]);
        for i in 0..200i64 {
            if i % 2 == 0 {
                c.push_row(vec![Value::Int(i), Value::Int(i % 7)]);
            }
        }
        db.add_table(c.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![
                JoinEdge::parse("A.id", "B.movie_id"),
                JoinEdge::parse("A.id", "C.movie_id"),
            ],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn subset_schema_is_valid() {
        let (_, schema) = db_and_schema();
        let sub = subset_schema(&schema, &["A".to_string(), "C".to_string()]);
        assert_eq!(sub.num_tables(), 2);
        assert_eq!(sub.root(), "A");
        assert_eq!(sub.edges().len(), 1);
        let single = subset_schema(&schema, &["B".to_string()]);
        assert_eq!(single.num_tables(), 1);
        assert_eq!(single.root(), "B");
    }

    #[test]
    fn estimates_common_queries_well_but_not_rare_ones() {
        let (db, schema) = db_and_schema();
        let est = UniformJoinSampleEstimator::new(db.clone(), schema.clone(), 4_000, 7);
        assert_eq!(est.name(), "UniformJoinSamples");

        // A common query: half of A joins C.
        let q = Query::join(&["A", "C"]);
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let guess = est.estimate(&q);
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 1.5, "guess {guess} truth {truth}");
        assert!(est.size_bytes() > 0);

        // A filtered join.
        let q = Query::join(&["A", "B"]).filter("B", "kind", Predicate::eq(1i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let guess = est.estimate(&q);
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 2.0, "guess {guess} truth {truth}");

        // An impossible query gets the floor estimate of 1 (no sample hits).
        let q = Query::join(&["A"]).filter("A", "year", Predicate::eq(1i64));
        assert_eq!(est.estimate(&q), 1.0);
    }
}
