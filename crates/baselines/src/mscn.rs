//! MSCN-style supervised, query-driven estimator (Kipf et al. 2019).
//!
//! The original MSCN is a multi-set convolutional network over (table, join, predicate)
//! sets plus per-table sample bitmaps.  This reproduction keeps the paradigm — featurise
//! the query, regress the (log) cardinality, train on a workload of labelled queries — with
//! a simplified featurisation:
//!
//! * one-hot of the joined tables,
//! * per content column: `[has filter, op one-hot(5), normalised literal]`,
//! * the number of joins,
//!
//! and a small fully-connected network trained with Adam on mean-squared error of
//! `log2(card)`.  Like the original, it is fast to evaluate and reasonable on queries
//! similar to its training distribution, but has no mechanism to be *consistent* with the
//! data and degrades on out-of-distribution queries — the behaviour the paper reports.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nc_nn::{relu, relu_backward, Adam, AdamConfig, Linear, Matrix};
use nc_schema::{CompareOp, JoinSchema, Query};
use nc_storage::{ColumnDictionary, Database};

use crate::estimator::CardinalityEstimator;

/// Scale used to normalise `log2(card)` into roughly `[0, 1]`.
const LOG_SCALE: f64 = 40.0;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct MscnConfig {
    /// Hidden width of the two-layer MLP.
    pub hidden: usize,
    /// Training epochs over the labelled query set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        MscnConfig {
            hidden: 64,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 11,
        }
    }
}

/// The supervised estimator.
pub struct MscnEstimator {
    schema: Arc<JoinSchema>,
    /// Featurisation metadata: content columns in a fixed order with their dictionaries.
    columns: Vec<(String, String)>,
    dicts: HashMap<(String, String), ColumnDictionary>,
    layer1: Linear,
    layer2: Linear,
    layer3: Linear,
    input_dim: usize,
}

impl MscnEstimator {
    /// Trains the estimator on labelled queries (`(query, true cardinality)` pairs).
    pub fn train(
        db: &Database,
        schema: Arc<JoinSchema>,
        labelled: &[(Query, f64)],
        config: &MscnConfig,
    ) -> Self {
        assert!(
            !labelled.is_empty(),
            "MSCN needs at least one training query"
        );
        // Featurisation metadata.
        let mut columns = Vec::new();
        let mut dicts = HashMap::new();
        for table in schema.tables() {
            let t = db.expect_table(table);
            let join_keys = schema.join_key_columns(table);
            for col in t.columns() {
                if join_keys.iter().any(|k| k == col.name()) {
                    continue;
                }
                let key = (table.clone(), col.name().to_string());
                dicts.insert(key.clone(), ColumnDictionary::from_column(col));
                columns.push(key);
            }
        }
        columns.sort();
        let input_dim = schema.num_tables() + columns.len() * 7 + 1;

        let mut rng = StdRng::seed_from_u64(config.seed);
        let layer1 = Linear::new(input_dim, config.hidden, &mut rng);
        let layer2 = Linear::new(config.hidden, config.hidden / 2, &mut rng);
        let layer3 = Linear::new(config.hidden / 2, 1, &mut rng);
        let mut adam = Adam::for_params(
            AdamConfig {
                lr: config.learning_rate,
                ..Default::default()
            },
            &[
                &layer1.weight,
                &layer1.bias,
                &layer2.weight,
                &layer2.bias,
                &layer3.weight,
                &layer3.bias,
            ],
        );

        let mut this = MscnEstimator {
            schema,
            columns,
            dicts,
            layer1,
            layer2,
            layer3,
            input_dim,
        };

        // Pre-featurise the training set.
        let features: Vec<Vec<f32>> = labelled.iter().map(|(q, _)| this.featurize(q)).collect();
        let labels: Vec<f32> = labelled
            .iter()
            .map(|(_, card)| ((card.max(1.0)).log2() / LOG_SCALE) as f32)
            .collect();

        let mut order: Vec<usize> = (0..labelled.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                let x = Matrix::from_vec(
                    chunk.len(),
                    this.input_dim,
                    chunk.iter().flat_map(|&i| features[i].clone()).collect(),
                );
                let y: Vec<f32> = chunk.iter().map(|&i| labels[i]).collect();
                let (h1, h2, out) = this.forward(&x);
                // MSE loss gradient.
                let mut dout = Matrix::zeros(out.rows(), 1);
                for b in 0..out.rows() {
                    dout.set(b, 0, 2.0 * (out.get(b, 0) - y[b]) / out.rows() as f32);
                }
                // Backward through the three layers.
                let mut dh2 = Matrix::zeros(h2.rows(), h2.cols());
                this.layer3.backward(&h2, &dout, &mut dh2);
                relu_backward(&h2, &mut dh2);
                let mut dh1 = Matrix::zeros(h1.rows(), h1.cols());
                this.layer2.backward(&h1, &dh2, &mut dh1);
                relu_backward(&h1, &mut dh1);
                let mut dx = Matrix::zeros(x.rows(), x.cols());
                this.layer1.backward(&x, &dh1, &mut dx);
                adam.step(&mut [
                    &mut this.layer1.weight,
                    &mut this.layer1.bias,
                    &mut this.layer2.weight,
                    &mut this.layer2.bias,
                    &mut this.layer3.weight,
                    &mut this.layer3.bias,
                ]);
            }
        }
        this
    }

    fn forward(&self, x: &Matrix) -> (Matrix, Matrix, Matrix) {
        let mut h1 = Matrix::zeros(x.rows(), self.layer1.weight.value.cols());
        self.layer1.forward(x, &mut h1);
        relu(&mut h1);
        let mut h2 = Matrix::zeros(x.rows(), self.layer2.weight.value.cols());
        self.layer2.forward(&h1, &mut h2);
        relu(&mut h2);
        let mut out = Matrix::zeros(x.rows(), 1);
        self.layer3.forward(&h2, &mut out);
        (h1, h2, out)
    }

    /// Featurises a query into a fixed-length vector.
    pub fn featurize(&self, query: &Query) -> Vec<f32> {
        let mut v = vec![0.0f32; self.input_dim];
        // Table one-hot.
        for (i, t) in self.schema.tables().iter().enumerate() {
            if query.joins(t) {
                v[i] = 1.0;
            }
        }
        let base = self.schema.num_tables();
        // Per-column filter slots.
        for f in &query.filters {
            let key = (f.table.clone(), f.column.clone());
            let Some(pos) = self.columns.iter().position(|c| *c == key) else {
                continue;
            };
            let slot = base + pos * 7;
            v[slot] = 1.0;
            let op_idx = match f.predicate.op {
                CompareOp::Eq => 0,
                CompareOp::Lt => 1,
                CompareOp::Le => 2,
                CompareOp::Gt => 3,
                CompareOp::Ge => 4,
                CompareOp::In => 0,
            };
            v[slot + 1 + op_idx] = 1.0;
            let dict = &self.dicts[&key];
            let literal = &f.predicate.literals[0];
            let code = dict
                .encode(literal)
                .or_else(|| dict.floor_code(literal))
                .unwrap_or(0);
            v[slot + 6] = code as f32 / dict.domain_size().max(1) as f32;
        }
        // Number of joins, normalised by schema size.
        v[self.input_dim - 1] = (query.num_tables() as f32 - 1.0) / self.schema.num_tables() as f32;
        v
    }
}

impl CardinalityEstimator for MscnEstimator {
    fn name(&self) -> &str {
        "MSCN"
    }

    fn estimate(&self, query: &Query) -> f64 {
        let features = self.featurize(query);
        let x = Matrix::from_vec(1, self.input_dim, features);
        let (_, _, out) = self.forward(&x);
        let log2 = f64::from(out.get(0, 0)) * LOG_SCALE;
        2f64.powf(log2.clamp(0.0, 60.0)).max(1.0)
    }

    fn size_bytes(&self) -> usize {
        (self.layer1.num_params() + self.layer2.num_params() + self.layer3.num_params()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::{TableBuilder, Value};

    fn setup() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["id", "year"]);
        for i in 0..400i64 {
            a.push_row(vec![Value::Int(i), Value::Int(2000 + i % 20)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["movie_id", "kind"]);
        for i in 0..400i64 {
            for k in 0..2 {
                b.push_row(vec![Value::Int(i), Value::Int((i + k) % 5)]);
            }
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.id", "B.movie_id")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    fn training_queries(db: &Database, schema: &JoinSchema, n: usize) -> Vec<(Query, f64)> {
        let mut out = Vec::new();
        for i in 0..n {
            let year = 2000 + (i % 20) as i64;
            let q = if i % 2 == 0 {
                Query::join(&["A"]).filter("A", "year", Predicate::le(year))
            } else {
                Query::join(&["A", "B"])
                    .filter("A", "year", Predicate::le(year))
                    .filter("B", "kind", Predicate::eq((i % 5) as i64))
            };
            let card = nc_exec::true_cardinality(db, schema, &q) as f64;
            out.push((q, card.max(1.0)));
        }
        out
    }

    #[test]
    fn learns_the_training_distribution() {
        let (db, schema) = setup();
        let train = training_queries(&db, &schema, 200);
        let mscn = MscnEstimator::train(&db, schema.clone(), &train, &MscnConfig::default());
        assert_eq!(mscn.name(), "MSCN");
        assert!(mscn.size_bytes() > 0);
        // In-distribution queries should land within a modest factor of the truth.
        let mut ok = 0;
        let eval = training_queries(&db, &schema, 40);
        for (q, truth) in &eval {
            let guess = mscn.estimate(q);
            let qerr = (guess / truth).max(truth / guess);
            if qerr < 5.0 {
                ok += 1;
            }
        }
        assert!(ok >= 30, "only {ok}/40 in-distribution queries within 5x");
    }

    #[test]
    fn featurization_shape_is_stable() {
        let (db, schema) = setup();
        let train = training_queries(&db, &schema, 20);
        let mscn = MscnEstimator::train(
            &db,
            schema.clone(),
            &train,
            &MscnConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let q = Query::join(&["A", "B"]).filter("B", "kind", Predicate::eq(1i64));
        let f1 = mscn.featurize(&q);
        let f2 = mscn.featurize(&q);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), mscn.input_dim);
        // Different queries featurise differently.
        let f3 = mscn.featurize(&Query::join(&["A"]));
        assert_ne!(f1, f3);
        // Estimates are at least 1.
        assert!(mscn.estimate(&q) >= 1.0);
    }
}
