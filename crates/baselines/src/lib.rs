//! # nc-baselines
//!
//! The cardinality estimators NeuroCard is compared against in the paper's evaluation
//! (§7.2), re-implemented over the same storage/schema substrate so every method answers
//! the exact same [`nc_schema::Query`] objects:
//!
//! | Paper baseline | Module | Notes |
//! |---|---|---|
//! | Postgres v12 (1-D histograms + heuristics) | [`postgres_like`] | equi-depth histograms, attribute-value independence, join-uniformity formula |
//! | IBJS (Leis et al. 2017) | [`ibjs`] | index-based join sampling with per-table filters applied during the walk |
//! | MSCN (Kipf et al. 2019) | [`mscn`] | supervised query-driven regressor trained on labelled queries (simplified featurisation) |
//! | DeepDB (Hilprecht et al. 2020) | [`deepdb_lite`] | per-(root, child) table-pair densities combined under conditional independence |
//! | Uniform join samples (ablation E) | [`sampling`] | the Exact Weight sampler used directly as an estimator, no model |
//! | One AR model per table (ablation D) | [`independence`] | single-table NeuroCard models combined under independence |
//! | Oracle | [`oracle`] | exact answers via `nc-exec` (sanity checks and Q-error denominators) |
//!
//! Every estimator implements [`CardinalityEstimator`], so the benchmark harness can treat
//! them uniformly.

pub mod deepdb_lite;
pub mod estimator;
pub mod ibjs;
pub mod independence;
pub mod mscn;
pub mod oracle;
pub mod postgres_like;
pub mod sampling;

pub use deepdb_lite::DeepDbLite;
pub use estimator::CardinalityEstimator;
pub use ibjs::IbjsEstimator;
pub use independence::PerTableArEstimator;
pub use mscn::{MscnConfig, MscnEstimator};
pub use oracle::OracleEstimator;
pub use postgres_like::PostgresLikeEstimator;
pub use sampling::UniformJoinSampleEstimator;
