//! A Postgres-style estimator: per-column statistics, attribute-value independence, and
//! textbook join-selectivity heuristics.
//!
//! This mirrors what the paper's "Postgres (v12)" baseline does conceptually: every column
//! gets an equi-depth histogram plus a most-common-values list and a distinct count; filter
//! selectivities are combined by multiplication (independence), and each equi-join edge
//! contributes the classic `1 / max(ndv(left), ndv(right))` factor over the cartesian
//! product of the joined tables (Selinger et al. 1979).

use std::collections::HashMap;

use nc_schema::{CompareOp, JoinSchema, Predicate, Query};
use nc_storage::{Column, Database, Value};

use crate::estimator::CardinalityEstimator;

/// Per-column statistics: row/NULL counts, distinct count, most-common values and an
/// equi-depth histogram over the remaining values.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    rows: usize,
    nulls: usize,
    distinct: usize,
    /// Most common values with their frequencies (fraction of non-NULL rows).
    mcv: Vec<(Value, f64)>,
    /// Equi-depth histogram bounds over non-MCV values (ascending).  Each bucket holds
    /// `bucket_fraction` of the non-NULL, non-MCV rows.
    bounds: Vec<Value>,
    bucket_fraction: f64,
}

impl ColumnStats {
    /// Builds statistics for one column.
    pub fn build(column: &Column, num_buckets: usize, num_mcv: usize) -> Self {
        let rows = column.len();
        let nulls = column.null_count();
        let mut counts: Vec<(Value, u64)> = column.value_counts().into_iter().collect();
        let distinct = counts.len();
        let non_null = (rows - nulls).max(1) as f64;
        // Most common values.
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mcv: Vec<(Value, f64)> = counts
            .iter()
            .take(num_mcv)
            .map(|(v, c)| (v.clone(), *c as f64 / non_null))
            .collect();
        // Equi-depth histogram over the remaining values.
        let mcv_set: Vec<&Value> = mcv.iter().map(|(v, _)| v).collect();
        let mut rest: Vec<Value> = Vec::new();
        for (v, c) in &counts {
            if !mcv_set.contains(&v) {
                for _ in 0..*c {
                    rest.push(v.clone());
                }
            }
        }
        rest.sort();
        let mut bounds = Vec::new();
        if !rest.is_empty() {
            let buckets = num_buckets.max(1).min(rest.len());
            for b in 0..=buckets {
                let idx = (b * (rest.len() - 1)) / buckets;
                bounds.push(rest[idx].clone());
            }
        }
        let bucket_fraction = if bounds.len() > 1 {
            (rest.len() as f64 / non_null) / (bounds.len() - 1) as f64
        } else {
            0.0
        };
        ColumnStats {
            rows,
            nulls,
            distinct,
            mcv,
            bounds,
            bucket_fraction,
        }
    }

    /// Number of distinct non-NULL values.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Estimated selectivity (fraction of the table's rows) of `pred` on this column,
    /// assuming independence from everything else.
    pub fn selectivity(&self, pred: &Predicate) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let non_null_frac = 1.0 - self.nulls as f64 / self.rows as f64;
        let sel = match pred.op {
            CompareOp::Eq => self.equality_selectivity(&pred.literals[0]),
            CompareOp::In => pred
                .literals
                .iter()
                .map(|v| self.equality_selectivity(v))
                .sum::<f64>()
                .min(1.0),
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                self.range_selectivity(pred)
            }
        };
        (sel * non_null_frac).clamp(0.0, 1.0)
    }

    fn equality_selectivity(&self, literal: &Value) -> f64 {
        if literal.is_null() {
            return 0.0;
        }
        if let Some((_, f)) = self.mcv.iter().find(|(v, _)| v == literal) {
            return *f;
        }
        // Uniformity over the non-MCV distinct values.
        let mcv_frac: f64 = self.mcv.iter().map(|(_, f)| f).sum();
        let rest_distinct = self.distinct.saturating_sub(self.mcv.len()).max(1);
        ((1.0 - mcv_frac) / rest_distinct as f64).max(0.0)
    }

    fn range_selectivity(&self, pred: &Predicate) -> f64 {
        let matches = |v: &Value| pred.matches(v);
        // Fraction of MCVs matching.
        let mcv_part: f64 = self
            .mcv
            .iter()
            .filter(|(v, _)| matches(v))
            .map(|(_, f)| f)
            .sum();
        // Histogram part: fraction of buckets whose bounds fall inside the range, with
        // linear interpolation at the boundary buckets for integer columns.
        let mut hist_part = 0.0;
        if self.bounds.len() > 1 {
            for w in self.bounds.windows(2) {
                let (lo, hi) = (&w[0], &w[1]);
                let lo_in = matches(lo);
                let hi_in = matches(hi);
                hist_part += if lo_in && hi_in {
                    self.bucket_fraction
                } else if lo_in || hi_in {
                    self.bucket_fraction * 0.5
                } else {
                    0.0
                };
            }
        }
        (mcv_part + hist_part).clamp(0.0, 1.0)
    }
}

/// The Postgres-like estimator.
pub struct PostgresLikeEstimator {
    schema: JoinSchema,
    /// Row count per table.
    table_rows: HashMap<String, f64>,
    /// Statistics per `table.column` that has them.
    stats: HashMap<(String, String), ColumnStats>,
    size_bytes: usize,
}

impl PostgresLikeEstimator {
    /// Builds statistics for every column of every table (ANALYZE).
    pub fn build(db: &Database, schema: &JoinSchema) -> Self {
        Self::build_with(db, schema, 100, 20)
    }

    /// Builds with explicit histogram/MCV sizes.
    pub fn build_with(
        db: &Database,
        schema: &JoinSchema,
        num_buckets: usize,
        num_mcv: usize,
    ) -> Self {
        let mut table_rows = HashMap::new();
        let mut stats = HashMap::new();
        for tname in schema.tables() {
            let table = db.expect_table(tname);
            table_rows.insert(tname.clone(), table.num_rows() as f64);
            for col in table.columns() {
                stats.insert(
                    (tname.clone(), col.name().to_string()),
                    ColumnStats::build(col, num_buckets, num_mcv),
                );
            }
        }
        // Rough size: each MCV/bound counts as 16 bytes, plus fixed per-column overhead.
        let size_bytes = stats
            .values()
            .map(|s| 32 + 16 * (s.mcv.len() + s.bounds.len()))
            .sum();
        PostgresLikeEstimator {
            schema: schema.clone(),
            table_rows,
            stats,
            size_bytes,
        }
    }

    fn column_stats(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        self.stats.get(&(table.to_string(), column.to_string()))
    }
}

impl CardinalityEstimator for PostgresLikeEstimator {
    fn name(&self) -> &str {
        "Postgres-like"
    }

    fn estimate(&self, query: &Query) -> f64 {
        // 1. Cartesian product of the joined tables.
        let mut estimate: f64 = query
            .tables
            .iter()
            .map(|t| self.table_rows.get(t).copied().unwrap_or(1.0).max(1.0))
            .product();

        // 2. Join-uniformity factor per join edge inside the query.
        for t in &query.tables {
            if let Some(parent) = self.schema.parent(t) {
                if !query.joins(parent) {
                    continue;
                }
                for edge in self.schema.edges_between(parent, t) {
                    let left = self
                        .column_stats(&edge.left.table, &edge.left.column)
                        .map(|s| s.distinct())
                        .unwrap_or(1)
                        .max(1);
                    let right = self
                        .column_stats(&edge.right.table, &edge.right.column)
                        .map(|s| s.distinct())
                        .unwrap_or(1)
                        .max(1);
                    estimate /= left.max(right) as f64;
                }
            }
        }

        // 3. Filter selectivities under attribute-value independence.
        for f in &query.filters {
            let sel = self
                .column_stats(&f.table, &f.column)
                .map(|s| s.selectivity(&f.predicate))
                .unwrap_or(0.1);
            estimate *= sel.max(1e-9);
        }

        estimate.max(1.0)
    }

    fn size_bytes(&self) -> usize {
        self.size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::JoinEdge;
    use nc_storage::TableBuilder;

    fn db_and_schema() -> (Database, JoinSchema) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "year"]);
        for i in 0..1000i64 {
            a.push_row(vec![Value::Int(i % 100), Value::Int(1990 + i % 30)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "kind"]);
        for i in 0..2000i64 {
            b.push_row(vec![Value::Int(i % 100), Value::Int(i % 5)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (db, schema)
    }

    #[test]
    fn column_stats_selectivities_are_reasonable() {
        let (db, _) = db_and_schema();
        let col = db.expect_table("B").column("kind").unwrap();
        let stats = ColumnStats::build(col, 10, 3);
        assert_eq!(stats.distinct(), 5);
        // Equality on a uniform 5-value column ≈ 0.2.
        let sel = stats.selectivity(&Predicate::eq(2i64));
        assert!((sel - 0.2).abs() < 0.05, "sel {sel}");
        // IN over two values ≈ 0.4.
        let sel = stats.selectivity(&Predicate::isin(vec![Value::Int(0), Value::Int(1)]));
        assert!((sel - 0.4).abs() < 0.1, "sel {sel}");
        // A range covering everything ≈ 1.
        let sel = stats.selectivity(&Predicate::ge(0i64));
        assert!(sel > 0.8, "sel {sel}");
        // Impossible equality ≈ small.
        let sel = stats.selectivity(&Predicate::eq(99i64));
        assert!(sel < 0.25);
        // NULL literal matches nothing.
        assert_eq!(
            stats.selectivity(&Predicate::new(CompareOp::Eq, vec![Value::Null])),
            0.0
        );
    }

    #[test]
    fn join_estimate_close_on_uniform_keys() {
        let (db, schema) = db_and_schema();
        let est = PostgresLikeEstimator::build(&db, &schema);
        assert_eq!(est.name(), "Postgres-like");
        assert!(est.size_bytes() > 0);
        // Uniform keys: true join size = 1000 * 2000 / 100 = 20000; the estimator should be
        // within a small factor.
        let guess = est.estimate(&Query::join(&["A", "B"]));
        let truth = 20_000.0;
        let q = (guess / truth).max(truth / guess);
        assert!(q < 2.0, "guess {guess} truth {truth}");
        // Single-table filter estimate.
        let guess = est.estimate(&Query::join(&["A"]).filter("A", "year", Predicate::lt(1995i64)));
        assert!(guess > 50.0 && guess < 500.0, "guess {guess}");
        // Estimates never drop below 1.
        let guess =
            est.estimate(&Query::join(&["A"]).filter("A", "year", Predicate::eq(1_000_000i64)));
        assert!(guess >= 1.0);
    }

    #[test]
    fn histogram_on_skewed_data_uses_mcv() {
        let mut b = TableBuilder::new("t", &["v"]);
        for _ in 0..900 {
            b.push_row(vec![Value::Int(7)]);
        }
        for i in 0..100i64 {
            b.push_row(vec![Value::Int(i + 100)]);
        }
        let t = b.finish();
        let stats = ColumnStats::build(t.column("v").unwrap(), 10, 5);
        let sel = stats.selectivity(&Predicate::eq(7i64));
        assert!((sel - 0.9).abs() < 0.02, "sel {sel}");
    }
}
